// Package benchfmt reads and writes the standard Go benchmark text
// format (https://golang.org/design/14313-benchmark-format), the lingua
// franca of Go performance tooling: the same files `tcsim -benchfmt`
// writes are accepted by stock benchstat, and benchfmt.Reader accepts
// raw `go test -bench` output.
//
// A file is a sequence of lines:
//
//	commit: 1f2e3d               <- configuration ("key: value")
//	BenchmarkSuite/exp=table2 1 10352000000 ns/op 42 cells/op
//
// Configuration lines apply to every following result until overridden.
// Result names carry structured sub-keys ("/key=value" path elements),
// which Result.Lookup exposes alongside the file configuration —
// the raw material for benchproc filters and projections.
//
// The reader is forgiving the way the format specification demands:
// unrecognized lines are skipped, and a line that looks like a result
// but does not parse is recorded as a Problem rather than aborting, so
// one corrupt line cannot hide an entire snapshot.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// A Value is one measurement of a result: a magnitude and its unit,
// e.g. 10352000000 "ns/op".
type Value struct {
	Value float64
	Unit  string
}

// A Config is one "key: value" pair, either from a file configuration
// line or parsed out of a result name.
type Config struct {
	Key   string
	Value string
}

// A Result is one benchmark result line plus the file configuration in
// effect when it was read.
type Result struct {
	// FullName is the complete benchmark name, including sub-name keys
	// and any "-N" gomaxprocs suffix, without the "Benchmark" prefix
	// stripped ("BenchmarkSuite/exp=table2-8").
	FullName string
	// Iters is the iteration count field.
	Iters int64
	// Values are the (value, unit) measurement pairs, in line order.
	Values []Value
	// Config is the file configuration snapshot for this result, in
	// first-appearance order.
	Config []Config
	// Line is the 1-based line number the result was read from.
	Line int
}

// BaseName returns the name up to the first "/" with any "-N"
// gomaxprocs suffix removed: the benchmark family.
func (r *Result) BaseName() string {
	name := r.FullName
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return trimGomaxprocs(name)
}

// NameKeys parses the sub-name path elements of the form "key=value"
// into Config pairs, in order. A trailing "-N" gomaxprocs suffix on the
// last element becomes a "gomaxprocs" key. Path elements without "=" are
// skipped — they are part of the name, not structured data.
func (r *Result) NameKeys() []Config {
	var keys []Config
	var procs string
	parts := strings.Split(r.FullName, "/")
	for i, part := range parts {
		if i == len(parts)-1 {
			if trimmed, n, ok := splitGomaxprocs(part); ok {
				part, procs = trimmed, n
			}
		}
		if eq := strings.IndexByte(part, '='); eq > 0 {
			keys = append(keys, Config{part[:eq], part[eq+1:]})
		}
	}
	if procs != "" {
		keys = append(keys, Config{"gomaxprocs", procs})
	}
	return keys
}

// Lookup resolves a key against this result: ".name" is the base name,
// ".fullname" the complete name, then sub-name keys, then file
// configuration. Sub-name keys shadow file configuration of the same
// name, matching x/perf's projection semantics.
func (r *Result) Lookup(key string) (string, bool) {
	switch key {
	case ".name":
		return r.BaseName(), true
	case ".fullname":
		return r.FullName, true
	}
	for _, kv := range r.NameKeys() {
		if kv.Key == key {
			return kv.Value, true
		}
	}
	for _, kv := range r.Config {
		if kv.Key == key {
			return kv.Value, true
		}
	}
	return "", false
}

// Value returns the measurement in the given unit, if present.
func (r *Result) Value(unit string) (float64, bool) {
	for _, v := range r.Values {
		if v.Unit == unit {
			return v.Value, true
		}
	}
	return 0, false
}

// trimGomaxprocs removes a trailing "-N" procs suffix, if any.
func trimGomaxprocs(name string) string {
	s, _, ok := splitGomaxprocs(name)
	if !ok {
		return name
	}
	return s
}

// splitGomaxprocs splits a trailing "-N" (all digits, non-empty) off a
// name segment.
func splitGomaxprocs(s string) (trimmed, n string, ok bool) {
	i := strings.LastIndexByte(s, '-')
	if i <= 0 || i == len(s)-1 {
		return s, "", false
	}
	for _, c := range s[i+1:] {
		if c < '0' || c > '9' {
			return s, "", false
		}
	}
	return s[:i], s[i+1:], true
}

// A Problem is a line that looked like a benchmark result but failed to
// parse. Problems are diagnostics, not errors: the reader keeps going.
type Problem struct {
	Path string
	Line int
	Msg  string
}

func (p Problem) String() string {
	return fmt.Sprintf("%s:%d: %s", p.Path, p.Line, p.Msg)
}

// A Reader reads benchmark results from a stream.
type Reader struct {
	scan    *bufio.Scanner
	path    string
	line    int
	cfg     []Config
	cfgIdx  map[string]int
	res     Result
	probs   []Problem
	scanErr error
}

// maxLine bounds one input line; longer lines surface as a scan error
// rather than an unbounded allocation.
const maxLine = 1 << 20

// NewReader reads the benchmark format from r. path is used in
// diagnostics only.
func NewReader(r io.Reader, path string) *Reader {
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 64*1024), maxLine)
	return &Reader{scan: scan, path: path, cfgIdx: map[string]int{}}
}

// Scan advances to the next result line, skipping configuration and
// unrecognized lines. It returns false at end of input or on an I/O
// error (see Err).
func (r *Reader) Scan() bool {
	for r.scan.Scan() {
		r.line++
		line := r.scan.Text()
		switch classify(line) {
		case lineResult:
			if r.parseResult(line) {
				return true
			}
		case lineConfig:
			r.parseConfig(line)
		}
	}
	r.scanErr = r.scan.Err()
	return false
}

// Result returns the result Scan advanced to. The returned pointer is
// only valid until the next Scan: callers keeping results must copy.
func (r *Reader) Result() *Result { return &r.res }

// Err returns the first I/O or line-length error, if any. Parse
// problems are not errors; see Problems.
func (r *Reader) Err() error {
	if r.scanErr != nil {
		return fmt.Errorf("%s: %w", r.path, r.scanErr)
	}
	return nil
}

// Problems returns the malformed result lines encountered so far.
func (r *Reader) Problems() []Problem { return r.probs }

type lineKind int

const (
	lineOther lineKind = iota
	lineResult
	lineConfig
)

// classify decides what a line is. A result line starts with
// "Benchmark" followed by a non-lowercase character (or end of word); a
// configuration line starts with a lowercase key followed by ":". Per
// the format specification everything else is ignorable text.
func classify(line string) lineKind {
	const prefix = "Benchmark"
	if strings.HasPrefix(line, prefix) {
		rest := line[len(prefix):]
		if rest == "" || !isLower(rest[0]) {
			return lineResult
		}
		return lineOther
	}
	if len(line) > 0 && isLower(line[0]) {
		for i := 0; i < len(line); i++ {
			c := line[i]
			if c == ':' {
				return lineConfig
			}
			if !isConfigKeyChar(c) {
				return lineOther
			}
		}
	}
	return lineOther
}

func isLower(c byte) bool { return 'a' <= c && c <= 'z' }

func isConfigKeyChar(c byte) bool {
	return isLower(c) || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' || c == '-' || c == '_' || c == '.'
}

// parseConfig records a "key: value" line. An empty value is invalid
// per the specification and clears the key instead, which keeps a
// malformed header from leaking the previous file's value.
func (r *Reader) parseConfig(line string) {
	colon := strings.IndexByte(line, ':')
	key := line[:colon]
	val := strings.TrimSpace(line[colon+1:])
	if i, ok := r.cfgIdx[key]; ok {
		r.cfg[i].Value = val
		return
	}
	r.cfgIdx[key] = len(r.cfg)
	r.cfg = append(r.cfg, Config{key, val})
}

// parseResult parses a benchmark result line into r.res, or records a
// Problem and reports false.
func (r *Reader) parseResult(line string) bool {
	f := strings.Fields(line)
	bad := func(format string, args ...any) bool {
		r.probs = append(r.probs, Problem{r.path, r.line, fmt.Sprintf(format, args...)})
		return false
	}
	if len(f) < 4 {
		return bad("result line needs name, count and at least one value-unit pair, got %d fields", len(f))
	}
	if (len(f))%2 != 0 {
		return bad("odd field count %d: value without unit", len(f))
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil || iters <= 0 {
		return bad("bad iteration count %q", f[1])
	}
	values := make([]Value, 0, (len(f)-2)/2)
	for i := 2; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return bad("bad value %q for unit %q", f[i], f[i+1])
		}
		values = append(values, Value{v, f[i+1]})
	}
	// Snapshot the configuration: later lines may override keys.
	cfg := make([]Config, 0, len(r.cfg))
	for _, kv := range r.cfg {
		if kv.Value != "" {
			cfg = append(cfg, kv)
		}
	}
	r.res = Result{
		FullName: f[0],
		Iters:    iters,
		Values:   values,
		Config:   cfg,
		Line:     r.line,
	}
	return true
}

// ReadAll drains the reader, copying every result.
func ReadAll(rd io.Reader, path string) ([]Result, []Problem, error) {
	r := NewReader(rd, path)
	var out []Result
	for r.Scan() {
		res := *r.Result()
		res.Values = append([]Value(nil), res.Values...)
		res.Config = append([]Config(nil), res.Config...)
		out = append(out, res)
	}
	return out, r.Problems(), r.Err()
}

// A Writer emits results in the benchmark format, writing configuration
// lines only when their value changes — the compact form benchstat and
// this package's Reader both accept.
type Writer struct {
	w   io.Writer
	cfg map[string]string
}

// NewWriter writes the benchmark format to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, cfg: map[string]string{}}
}

// Write emits one result, preceded by any configuration lines whose
// values differ from what has been written so far.
func (w *Writer) Write(r *Result) error {
	for _, kv := range r.Config {
		if w.cfg[kv.Key] == kv.Value {
			continue
		}
		if _, err := fmt.Fprintf(w.w, "%s: %s\n", kv.Key, kv.Value); err != nil {
			return err
		}
		w.cfg[kv.Key] = kv.Value
	}
	var b strings.Builder
	b.WriteString(r.FullName)
	fmt.Fprintf(&b, " %d", r.Iters)
	for _, v := range r.Values {
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(v.Value, 'g', -1, 64))
		b.WriteByte(' ')
		b.WriteString(v.Unit)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w.w, b.String())
	return err
}
