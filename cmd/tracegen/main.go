// Command tracegen generates workload traces: it can save them in the
// binary trace format, print per-trace statistics, or dump records as text
// for inspection.
//
// Usage:
//
//	tracegen -w perl -n 1000000 -o perl.trace
//	tracegen -w gcc -n 500000 -stats
//	tracegen -w xlisp -n 50 -dump
//	tracegen -w gcc -n 10000000 -o gcc.tcstore -format store -compress
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		wname  = flag.String("w", "perl", "workload name")
		n      = flag.Int64("n", 1_000_000, "number of instructions")
		out    = flag.String("o", "", "output file for binary trace")
		format = flag.String("format", "v2", "trace format: v1 (fixed-width) | v2 (compact) | store (columnar, random access)")
		comp   = flag.Bool("compress", false, "with -format store: flate-compress block groups")
		doSt   = flag.Bool("stats", false, "print trace statistics")
		dump   = flag.Bool("dump", false, "dump records as text to stdout")
	)
	flag.Parse()

	w, err := workload.ByName(*wname)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	src := trace.NewLimit(w.Open(), *n)

	switch {
	case *dump:
		var r trace.Record
		for src.Next(&r) {
			if r.Class.IsBranch() {
				fmt.Printf("%#08x  %-13s taken=%-5v target=%#08x\n",
					r.PC, r.Class, r.Taken, r.Target)
			} else {
				fmt.Printf("%#08x  %-13s dst=r%d src=r%d,r%d\n",
					r.PC, r.Op, r.Dst, r.Src1, r.Src2)
			}
		}
	case *out != "":
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var count int64
		switch *format {
		case "v1":
			count, err = trace.Copy(trace.NewWriter(f), src)
		case "v2":
			count, err = trace.CopyV2(trace.NewWriterV2(f), src)
		case "store":
			count, err = trace.WriteStore(f, src, trace.StoreOptions{Compress: *comp})
		default:
			fmt.Fprintf(os.Stderr, "tracegen: unknown format %q\n", *format)
			os.Exit(2)
		}
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records (%s) to %s\n", count, *format, *out)
	default:
		*doSt = true
	}

	if *doSt {
		st := trace.NewStats().Consume(trace.NewLimit(w.Open(), *n))
		fmt.Printf("workload:            %s (%s)\n", w.Name, w.Description)
		fmt.Printf("instructions:        %d\n", st.Instructions)
		fmt.Printf("branches:            %d (%.2f%%)\n", st.Branches,
			100*float64(st.Branches)/float64(st.Instructions))
		fmt.Printf("  conditional:       %d\n", st.CondDirect)
		fmt.Printf("  uncond direct:     %d\n", st.UncondDirect)
		fmt.Printf("  calls:             %d\n", st.Calls)
		fmt.Printf("  returns:           %d\n", st.Returns)
		fmt.Printf("  indirect jumps:    %d (%.3f%% of instructions)\n", st.IndJumps,
			100*float64(st.IndJumps)/float64(st.Instructions))
		fmt.Printf("static ind jumps:    %d\n", st.StaticIndJumps())
		fmt.Printf("max targets/jump:    %d\n", st.MaxTargets())
		fmt.Printf("polymorphic (dyn):   %.1f%%\n", 100*st.PolymorphicFraction())
		hist := st.TargetHistogram(false)
		fmt.Printf("targets histogram (static sites): ")
		for b := 1; b <= trace.TargetHistogramCap; b++ {
			if hist[b] > 0 {
				fmt.Printf("%d:%d ", b, hist[b])
			}
		}
		fmt.Println()
		fmt.Printf("instruction mix:     ")
		for op := 0; op < trace.NumOpClasses; op++ {
			if st.OpMix[op] > 0 {
				fmt.Printf("%s %.1f%%  ", trace.OpClass(op),
					100*float64(st.OpMix[op])/float64(st.Instructions))
			}
		}
		fmt.Println()
	}
}
