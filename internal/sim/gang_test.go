package sim

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// gangPoints builds a history-diverse gang over the paper's baseline front
// end: every fusable target-cache family, pattern and path histories at
// mixed depths, with share keys marking the members whose history configs
// are identical.
func gangPoints() []GangPoint {
	pattern := func(bits int) func() history.Provider {
		return func() history.Provider { return history.NewPatternProvider(bits) }
	}
	path := func(bits int) func() history.Provider {
		return func() history.Provider {
			return history.NewPath(history.PathConfig{Bits: bits, BitsPerTarget: 1, AddrBitOffset: 2, Filter: history.FilterIndJmp})
		}
	}
	return []GangPoint{
		{Config: DefaultConfig().WithTargetCache(
			func() core.TargetCache {
				return core.NewTagless(core.TaglessConfig{Entries: 512, Scheme: core.SchemeGshare})
			}, pattern(9)), HistShare: "pattern#9"},
		{Config: DefaultConfig().WithTargetCache(
			func() core.TargetCache {
				return core.NewTagless(core.TaglessConfig{Entries: 128, Scheme: core.SchemeGAg})
			}, pattern(9)), HistShare: "pattern#9"},
		{Config: DefaultConfig().WithTargetCache(
			func() core.TargetCache {
				return core.NewTagged(core.TaggedConfig{Entries: 512, Ways: 4, HistBits: 9})
			}, pattern(6)), HistShare: "pattern#6"},
		{Config: DefaultConfig().WithTargetCache(
			func() core.TargetCache { return core.NewCascaded(core.DefaultCascadedConfig()) },
			path(8)), HistShare: "path-indjmp#8"},
		{Config: DefaultConfig().WithTargetCache(
			func() core.TargetCache { return core.NewITTAGE(core.DefaultITTAGEConfig()) },
			path(8)), HistShare: "path-indjmp#8"},
		// No share key: a private provider even though pattern#9 exists.
		{Config: DefaultConfig().WithTargetCache(
			func() core.TargetCache { return core.NewLastTarget(256, 2) },
			pattern(9))},
	}
}

// TestGangMatchesSolo pins the fused kernel's equivalence contract: every
// member of a gang reports an AccuracyResult struct-identical to a solo
// RunAccuracy of the same config, at gang widths 1, a mixed prefix, and
// the full history-heterogeneous set.
func TestGangMatchesSolo(t *testing.T) {
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 60_000
	rep := trace.Capture(trace.NewLimit(w.Open(), budget))
	pts := gangPoints()
	solo := make([]AccuracyResult, len(pts))
	for i, pt := range pts {
		solo[i] = RunAccuracy(rep, budget, pt.Config)
	}
	for _, width := range []int{1, 3, len(pts)} {
		for lo := 0; lo < len(pts); lo += width {
			hi := lo + width
			if hi > len(pts) {
				hi = len(pts)
			}
			got, ok := RunAccuracyGang(rep, budget, pts[lo:hi])
			if !ok {
				t.Fatalf("width %d members [%d,%d): gang refused to fuse", width, lo, hi)
			}
			for i, res := range got {
				if res != solo[lo+i] {
					t.Errorf("width %d member %d diverges from solo run\n  gang %+v\n  solo %+v",
						width, lo+i, res, solo[lo+i])
				}
			}
		}
	}
}

// TestGangSharedHistoryMatchesPrivate verifies that history sharing is
// invisible in the results: the same gang with all share keys cleared
// (every member gets a private provider) reports identical results.
func TestGangSharedHistoryMatchesPrivate(t *testing.T) {
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 40_000
	rep := trace.Capture(trace.NewLimit(w.Open(), budget))
	shared := gangPoints()
	private := gangPoints()
	for i := range private {
		private[i].HistShare = ""
	}
	got, ok := RunAccuracyGang(rep, budget, shared)
	want, ok2 := RunAccuracyGang(rep, budget, private)
	if !ok || !ok2 {
		t.Fatal("gang refused to fuse")
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("member %d: shared-history result diverges from private providers\n  shared  %+v\n  private %+v",
				i, got[i], want[i])
		}
	}
}

// TestGangFallbackConditions enumerates every condition under which the
// gang must refuse to fuse and hand the caller back to per-point runs.
func TestGangFallbackConditions(t *testing.T) {
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 10_000
	rep := trace.Capture(trace.NewLimit(w.Open(), budget))
	base := gangPoints()

	t.Run("empty", func(t *testing.T) {
		if _, ok := RunAccuracyGang(rep, budget, nil); ok {
			t.Error("empty gang fused")
		}
	})
	t.Run("streaming-only-factory", func(t *testing.T) {
		if _, ok := RunAccuracyGang(opaqueFactory{rep}, budget, base); ok {
			t.Error("gang fused over a factory with no BlockSource")
		}
	})
	t.Run("btb-baseline-member", func(t *testing.T) {
		pts := append([]GangPoint{{Config: DefaultConfig()}}, base...)
		if _, ok := RunAccuracyGang(rep, budget, pts); ok {
			t.Error("gang fused a member without a target cache")
		}
	})
	t.Run("telemetry-member", func(t *testing.T) {
		pts := append([]GangPoint(nil), base...)
		cfg := pts[0].Config
		cfg.Telemetry = telemetry.NewCollector(telemetry.Config{})
		pts[0].Config = cfg
		if _, ok := RunAccuracyGang(rep, budget, pts); ok {
			t.Error("gang fused a member carrying a telemetry collector")
		}
	})
	t.Run("front-end-mismatch", func(t *testing.T) {
		pts := append([]GangPoint(nil), base...)
		cfg := pts[1].Config
		cfg.RASDepth = 8
		pts[1].Config = cfg
		if _, ok := RunAccuracyGang(rep, budget, pts); ok {
			t.Error("gang fused members with different front ends")
		}
	})
}

// TestGangErrorContract pins the fused kernel's corrupt-replay behaviour
// against solo runs: same partial counters per member, and the same
// ErrCorrupt surfaced only when the budget reaches past the cleanly
// decoded prefix.
func TestGangErrorContract(t *testing.T) {
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	rep := trace.Capture(trace.NewLimit(w.Open(), 20_000))
	buf := rep.Bytes()
	damaged := trace.NewReplayBytes(buf[:len(buf)*3/4], rep.Len())
	pts := gangPoints()
	for _, budget := range []int64{1_000, rep.Len()} {
		got, ok := RunAccuracyGang(damaged, budget, pts)
		if !ok {
			t.Fatalf("budget %d: gang refused to fuse", budget)
		}
		for i, pt := range pts {
			want := RunAccuracy(damaged, budget, pt.Config)
			gotErr, wantErr := got[i].Err, want.Err
			got[i].Err, want.Err = nil, nil
			if got[i] != want {
				t.Errorf("budget %d member %d: counters diverge\n  gang %+v\n  solo %+v", budget, i, got[i], want)
			}
			switch {
			case gotErr == nil && wantErr == nil:
			case gotErr == nil || wantErr == nil || gotErr.Error() != wantErr.Error():
				t.Errorf("budget %d member %d: error mismatch: gang %v, solo %v", budget, i, gotErr, wantErr)
			}
		}
	}
}

// TestGangCancellation pins partial results under a cancelled context:
// every member stops at the same poll boundary a solo run stops at.
func TestGangCancellation(t *testing.T) {
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 100_000
	rep := trace.Capture(trace.NewLimit(w.Open(), budget))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts := gangPoints()
	got, ok := RunAccuracyGangCtx(ctx, rep, budget, pts)
	if !ok {
		t.Fatal("gang refused to fuse")
	}
	for i, pt := range pts {
		want := RunAccuracyCtx(ctx, rep, budget, pt.Config)
		if got[i].Err != context.Canceled || want.Err != context.Canceled {
			t.Fatalf("member %d: expected context.Canceled, gang %v solo %v", i, got[i].Err, want.Err)
		}
		got[i].Err, want.Err = nil, nil
		if got[i] != want {
			t.Errorf("member %d: cancelled partial counters diverge\n  gang %+v\n  solo %+v", i, got[i], want)
		}
	}
}

// BenchmarkGangVsSolo measures the fused kernel's amortization: one pass
// updating 8 tagless configs against 8 separate solo passes.
func BenchmarkGangVsSolo(b *testing.B) {
	const budget = 1_000_000
	w, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	rep := w.Replay(budget)
	var pts []GangPoint
	for _, entries := range []int{64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		e := entries
		pts = append(pts, GangPoint{
			Config: DefaultConfig().WithTargetCache(
				func() core.TargetCache {
					return core.NewTagless(core.TaglessConfig{Entries: e, Scheme: core.SchemeGshare})
				},
				func() history.Provider { return history.NewPatternProvider(9) }),
			HistShare: "pattern#9",
		})
	}
	b.Run("gang-8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := RunAccuracyGang(rep, budget, pts); !ok {
				b.Fatal("gang refused to fuse")
			}
		}
		b.ReportMetric(float64(int64(len(pts))*budget*int64(b.N))/b.Elapsed().Seconds()/1e6, "Mpointinstr/s")
	})
	b.Run("solo-8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pt := range pts {
				RunAccuracy(rep, budget, pt.Config)
			}
		}
		b.ReportMetric(float64(int64(len(pts))*budget*int64(b.N))/b.Elapsed().Seconds()/1e6, "Mpointinstr/s")
	})
}
