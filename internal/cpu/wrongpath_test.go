package cpu

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

// TestWrongPathModeling checks the wrong-path-enabled event model:
// identical architectural results (instructions, branches, mispredicts),
// more dcache traffic (speculative pollution), and a cycle count that is
// plausibly close to — and never wildly different from — the clean model.
func TestWrongPathModeling(t *testing.T) {
	const budget = 150_000
	for _, name := range []string{"perl", "gcc"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		clean := NewEvent(DefaultConfig(), sim.NewEngine(sim.DefaultConfig())).
			Run(w.Open(), budget)

		cfg := DefaultConfig()
		cfg.ModelWrongPath = true
		src := w.Open()
		if _, ok := src.(WrongPathFetcher); !ok {
			t.Fatal("workload source does not implement WrongPathFetcher")
		}
		wp := NewEvent(cfg, sim.NewEngine(sim.DefaultConfig())).Run(src, budget)

		if wp.Instructions != clean.Instructions {
			t.Fatalf("%s: retired counts differ: %d vs %d",
				name, wp.Instructions, clean.Instructions)
		}
		if wp.Mispredicts != clean.Mispredicts || wp.Branches != clean.Branches {
			t.Fatalf("%s: architectural branch behaviour changed: %+v vs %+v",
				name, wp, clean)
		}
		if wp.DCacheAccesses <= clean.DCacheAccesses {
			t.Errorf("%s: wrong-path mode should add dcache accesses: %d vs %d",
				name, wp.DCacheAccesses, clean.DCacheAccesses)
		}
		ratio := float64(wp.Cycles) / float64(clean.Cycles)
		if ratio < 0.8 || ratio > 1.5 {
			t.Errorf("%s: wrong-path cycles implausible: %d vs %d (ratio %.2f)",
				name, wp.Cycles, clean.Cycles, ratio)
		}
		t.Logf("%s: clean %d cycles %d dacc; wrong-path %d cycles %d dacc (+%.1f%% accesses)",
			name, clean.Cycles, clean.DCacheAccesses, wp.Cycles, wp.DCacheAccesses,
			100*(float64(wp.DCacheAccesses)/float64(clean.DCacheAccesses)-1))
	}
}

// TestWrongPathDeterministic: wrong-path mode must stay deterministic.
func TestWrongPathDeterministic(t *testing.T) {
	w, err := workload.ByName("xlisp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ModelWrongPath = true
	run := func() Result {
		return NewEvent(cfg, sim.NewEngine(sim.DefaultConfig())).Run(w.Open(), 80_000)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestWrongPathArchitecturalIsolation: after a full run with wrong-path
// fetch, the underlying VM's architectural trace must be unperturbed —
// re-running without wrong-path produces identical retire-side counts.
func TestWrongPathArchitecturalIsolation(t *testing.T) {
	w, err := workload.ByName("gosearch")
	if err != nil {
		t.Fatal(err)
	}
	// Drive with wrong-path on, then verify the trace the source yields
	// afterwards continues the same architectural stream a fresh source
	// does at the same offset.
	cfg := DefaultConfig()
	cfg.ModelWrongPath = true
	src := w.Open()
	NewEvent(cfg, sim.NewEngine(sim.DefaultConfig())).Run(src, 50_000)

	fresh := w.Open()
	var a, b [64]uint64
	skipRecords(t, fresh, 50_000)
	collectPCs(t, fresh, a[:])
	collectPCs(t, src, b[:])
	if a != b {
		t.Fatalf("architectural stream diverged after wrong-path run:\n%v\nvs\n%v", a, b)
	}
}

func skipRecords(t *testing.T, src interface {
	Next(*vmRecord) bool
}, n int) {
	t.Helper()
	var r vmRecord
	for i := 0; i < n; i++ {
		if !src.Next(&r) {
			t.Fatal("stream ended early")
		}
	}
}

func collectPCs(t *testing.T, src interface {
	Next(*vmRecord) bool
}, out []uint64) {
	t.Helper()
	var r vmRecord
	for i := range out {
		if !src.Next(&r) {
			t.Fatal("stream ended early")
		}
		out[i] = r.PC
	}
}

// vmRecord aliases trace.Record for the helper signatures above.
type vmRecord = trace.Record

var _ WrongPathFetcher = (*vm.Looping)(nil) // Looping provides wrong-path fetch
