package sim_test

// External test package: sim must not import workload (workloads depend on
// the VM, the simulators depend only on traces), so the cross-package
// concurrency check lives out here. It is the `go test -race` probe for the
// parallel experiment runner's core assumption — many simulations reading
// one shared immutable replay buffer at once.

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestConcurrentAccuracyOverSharedReplay runs many accuracy simulations
// concurrently against one memoized replay and requires every run to agree
// with a serial reference run. Under -race this also proves the replay
// cursors share no mutable state.
func TestConcurrentAccuracyOverSharedReplay(t *testing.T) {
	const budget = 50_000
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	rep := w.Replay(budget)
	ref := sim.RunAccuracy(rep, budget, sim.DefaultConfig())

	const goroutines = 8
	results := make([]sim.AccuracyResult, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = sim.RunAccuracy(rep, budget, sim.DefaultConfig())
		}()
	}
	wg.Wait()
	for i, res := range results {
		if res != ref {
			t.Errorf("goroutine %d: result %+v differs from serial reference %+v", i, res, ref)
		}
	}
}

// TestConcurrentSegmentedReplay layers both axes of concurrency: several
// goroutines each run a segment-parallel simulation (which itself spawns
// one worker per segment) over one shared replay and over one shared
// out-of-core store whose LRU cache is small enough to evict under load.
// Under -race this proves segment workers and the store's group cache
// share no unsynchronized mutable state; the result check proves
// determinism survives the contention.
func TestConcurrentSegmentedReplay(t *testing.T) {
	const budget = 20 * trace.BlockLen
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	rep := w.Replay(budget)
	var img bytes.Buffer
	if _, err := trace.WriteStore(&img, rep.Open(), trace.StoreOptions{GroupRecords: 2 * trace.BlockLen}); err != nil {
		t.Fatal(err)
	}
	store, err := trace.OpenStore(bytes.NewReader(img.Bytes()), int64(img.Len()), 3*trace.BlockLen*(3*8+4))
	if err != nil {
		t.Fatal(err)
	}
	ref := sim.RunAccuracy(rep, budget, sim.DefaultConfig())

	const goroutines = 6
	results := make([]sim.AccuracyResult, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := trace.Factory(rep)
			if i%2 == 1 {
				src = store
			}
			results[i] = sim.RunAccuracySegmented(src, budget, 2+i%3, sim.DefaultConfig())
		}()
	}
	wg.Wait()
	for i, res := range results {
		if res != ref {
			t.Errorf("goroutine %d: result %+v differs from serial reference %+v", i, res, ref)
		}
	}
}
