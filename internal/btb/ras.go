package btb

// RAS is a return address stack (Webb; Kaeli & Emma). Calls push their
// fall-through address; returns pop. The stack has a fixed depth and wraps
// on overflow, silently overwriting the oldest entry, as hardware stacks do.
type RAS struct {
	stack []uint64
	top   int // index of next free slot (mod len)
	depth int // number of live entries, capped at len(stack)
}

// NewRAS returns a return address stack with the given capacity.
func NewRAS(capacity int) *RAS {
	if capacity < 1 {
		panic("btb: RAS capacity must be positive")
	}
	return &RAS{stack: make([]uint64, capacity)}
}

// Push records a return address (the fall-through of a call).
func (s *RAS) Push(addr uint64) {
	s.stack[s.top] = addr
	s.top = (s.top + 1) % len(s.stack)
	if s.depth < len(s.stack) {
		s.depth++
	}
}

// Pop predicts the target of a return. It returns 0, false when the stack
// is empty (mispredicted by construction).
func (s *RAS) Pop() (uint64, bool) {
	if s.depth == 0 {
		return 0, false
	}
	s.top = (s.top - 1 + len(s.stack)) % len(s.stack)
	s.depth--
	return s.stack[s.top], true
}

// Peek returns the top of stack without popping.
func (s *RAS) Peek() (uint64, bool) {
	if s.depth == 0 {
		return 0, false
	}
	return s.stack[(s.top-1+len(s.stack))%len(s.stack)], true
}

// Depth returns the number of live entries.
func (s *RAS) Depth() int { return s.depth }

// Reset empties the stack.
func (s *RAS) Reset() { s.top, s.depth = 0, 0 }
