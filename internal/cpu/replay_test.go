package cpu

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestRunReplayMatchesCursor pins the batched timing kernel (RunReplayCtx:
// decode-once iteration, hand-rolled data cache, devirtualized BTB probe)
// against the streaming reference loop (RunCtx over a Cursor): identical
// Result, field for field, across machine shapes that exercise both the
// power-of-two and the modulo window paths and both predictor layouts.
func TestRunReplayMatchesCursor(t *testing.T) {
	w, err := workload.ByName("go")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 60_000
	rep := trace.Capture(trace.NewLimit(w.Open(), budget))

	machines := map[string]Config{
		"default": DefaultConfig(),
		"non-pow2-window": func() Config {
			c := DefaultConfig()
			c.Window = 48 // not a power of two: forces the modulo slot path
			return c
		}(),
		"tiny-dcache": func() Config {
			c := DefaultConfig()
			c.DCacheBytes = 4096 // high miss rate stresses the eviction path
			return c
		}(),
	}
	engines := map[string]sim.Config{
		"baseline": sim.DefaultConfig(),
		"tagless": sim.DefaultConfig().WithTargetCache(
			func() core.TargetCache {
				return core.NewTagless(core.TaglessConfig{Entries: 512, Scheme: core.SchemeGshare})
			},
			func() history.Provider { return history.NewPatternProvider(9) },
		),
	}
	ctx := context.Background()
	for mn, mc := range machines {
		for en, ec := range engines {
			got := New(mc, sim.NewEngine(ec)).RunReplayCtx(ctx, rep, budget)
			want := New(mc, sim.NewEngine(ec)).RunCtx(ctx, rep.Open(), budget)
			if got != want {
				t.Errorf("%s/%s: replay kernel diverges\n  kernel %+v\n  cursor %+v", mn, en, got, want)
			}
		}
	}
}

// TestRunReplayErrorContract pins the kernel's behaviour over a damaged
// capture: same partial counters as the streaming loop and the same
// ErrCorrupt, surfaced only when the budget reaches past the cleanly
// decoded prefix.
func TestRunReplayErrorContract(t *testing.T) {
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	rep := trace.Capture(trace.NewLimit(w.Open(), 20_000))
	buf := rep.Bytes()
	damaged := trace.NewReplayBytes(buf[:len(buf)*3/4], rep.Len())
	ctx := context.Background()
	for _, budget := range []int64{1_000, rep.Len()} {
		got := New(DefaultConfig(), sim.NewEngine(sim.DefaultConfig())).RunReplayCtx(ctx, damaged, budget)
		want := New(DefaultConfig(), sim.NewEngine(sim.DefaultConfig())).RunCtx(ctx, damaged.Open(), budget)
		gotErr, wantErr := got.Err, want.Err
		got.Err, want.Err = nil, nil
		if got != want {
			t.Errorf("budget %d: counters diverge\n  kernel %+v\n  cursor %+v", budget, got, want)
		}
		switch {
		case gotErr == nil && wantErr == nil:
		case gotErr == nil || wantErr == nil || gotErr.Error() != wantErr.Error():
			t.Errorf("budget %d: error mismatch: kernel %v, cursor %v", budget, gotErr, wantErr)
		}
	}
}
