package perfstore

// On-disk record and segment encoding. A segment is an append-only log:
//
//	magic     8 bytes  "TCPLOG1\n"
//	record 0..R-1:
//	    uint32 metaLen | uint32 bodyLen | uint32 CRC32(meta‖body) |
//	    meta (JSON Meta) | body
//
// All integers are little-endian. The CRC guards both the meta JSON and
// the body, so any torn or flipped byte surfaces as an ErrCorrupt at scan
// time; scanning stops at the first damaged record (clean-prefix
// contract, as in internal/trace) and reports the byte offset where the
// clean prefix ends so reopen can truncate a torn tail.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"unicode/utf8"
)

const (
	segMagic     = "TCPLOG1\n"
	recHeaderLen = 4 + 4 + 4

	// maxMetaLen bounds the meta JSON so a corrupt length field cannot
	// drive a giant allocation.
	maxMetaLen = 1 << 20
	// MaxBodyBytes is the hard ceiling on a record body, shared by the
	// decoder and the HTTP layer's request limits.
	MaxBodyBytes = 1 << 30
)

// ErrCorrupt marks damaged store bytes: a bad segment magic, an
// out-of-range length field, a checksum mismatch, or meta JSON that does
// not parse. Wrapped errors carry the segment path and byte offset.
var ErrCorrupt = errors.New("perfstore: corrupt data")

// ErrNotFound is returned by lookups for IDs the store does not hold.
var ErrNotFound = errors.New("perfstore: record not found")

// Meta identifies one uploaded result row. ID is the content hash of
// (kind, machine, commit, experiment, body): uploads with identical
// content collapse onto one row, which is what makes client retries
// idempotent.
type Meta struct {
	ID         string `json:"id"`
	Kind       string `json:"kind"`
	Machine    string `json:"machine"`
	Commit     string `json:"commit"`
	Experiment string `json:"experiment"`
	// Schema optionally names the body's wire format (for example
	// "go-benchfmt/v1" or "benchdiff/v1"), so trend analysis can parse a
	// record without sniffing its bytes. Schema is descriptive metadata:
	// it is excluded from the content hash, so re-uploading identical
	// content with a corrected schema tag is still a duplicate.
	Schema string `json:"schema,omitempty"`
	// Time is the server-stamped upload time in Unix milliseconds. It is
	// excluded from the content hash: re-uploading the same content later
	// is a duplicate, not a new row.
	Time int64 `json:"unix_ms"`
	// Bytes is the body length, recorded so queries can report sizes
	// without touching segment files.
	Bytes int64 `json:"bytes"`
}

// Key returns the (machine, commit, experiment) sharding key string.
func (m Meta) Key() string {
	return m.Machine + "/" + m.Commit + "/" + m.Experiment
}

// ContentID computes the content-hash ID for a record: a SHA-256 over the
// length-prefixed identity fields and the body. Length prefixes keep the
// encoding injective (("a","bc") never collides with ("ab","c")).
func ContentID(kind, machine, commit, experiment string, body []byte) string {
	h := sha256.New()
	var n [8]byte
	for _, field := range []string{kind, machine, commit, experiment} {
		binary.LittleEndian.PutUint64(n[:], uint64(len(field)))
		h.Write(n[:])
		io.WriteString(h, field)
	}
	binary.LittleEndian.PutUint64(n[:], uint64(len(body)))
	h.Write(n[:])
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}

// corruptf builds an ErrCorrupt with position context.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// encodeRecord appends meta+body as one wire record to buf.
func encodeRecord(buf []byte, meta Meta, body []byte) ([]byte, error) {
	// Meta travels as JSON, and encoding/json silently rewrites invalid
	// UTF-8 to U+FFFD — which would break the decode-to-identical-meta
	// guarantee (and the content hash with it). Refuse instead.
	for _, field := range []string{meta.Kind, meta.Machine, meta.Commit, meta.Experiment, meta.Schema} {
		if !utf8.ValidString(field) {
			return buf, fmt.Errorf("perfstore: meta field %q is not valid UTF-8", field)
		}
	}
	mj, err := json.Marshal(meta)
	if err != nil {
		return buf, err
	}
	if len(mj) > maxMetaLen {
		return buf, fmt.Errorf("perfstore: meta too large (%d bytes)", len(mj))
	}
	if int64(len(body)) > MaxBodyBytes {
		return buf, fmt.Errorf("perfstore: body too large (%d bytes)", len(body))
	}
	crc := crc32.ChecksumIEEE(mj)
	crc = crc32.Update(crc, crc32.IEEETable, body)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(mj)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	buf = append(buf, mj...)
	buf = append(buf, body...)
	return buf, nil
}

// scannedRecord is one decoded record plus its position inside the
// segment, as reported by scanSegment.
type scannedRecord struct {
	Meta Meta
	Body []byte
	// Off is the record's start offset (its header); BodyOff the body's.
	Off, BodyOff int64
}

// scanSegment decodes records from r, calling fn for each. It returns the
// clean-prefix length in bytes — the offset up to which every byte
// decoded correctly — and a nil error on a clean end, or an ErrCorrupt
// describing the first damage. A scan error does not invalidate the
// records already delivered: they are the clean prefix. fn may return an
// error to stop the scan early (propagated verbatim).
func scanSegment(r io.Reader, fn func(rec scannedRecord) error) (cleanLen int64, err error) {
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, corruptf("segment header: %v", err)
	}
	if string(magic) != segMagic {
		return 0, corruptf("bad segment magic %q", magic)
	}
	off := int64(len(segMagic))
	var hdr [recHeaderLen]byte
	for {
		n, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			return off, nil // clean end on a record boundary
		}
		if err != nil {
			return off, corruptf("offset %d: torn record header (%d of %d bytes)", off, n, recHeaderLen)
		}
		metaLen := binary.LittleEndian.Uint32(hdr[0:])
		bodyLen := binary.LittleEndian.Uint32(hdr[4:])
		wantCRC := binary.LittleEndian.Uint32(hdr[8:])
		if metaLen == 0 || metaLen > maxMetaLen {
			return off, corruptf("offset %d: meta length %d out of range", off, metaLen)
		}
		if int64(bodyLen) > MaxBodyBytes {
			return off, corruptf("offset %d: body length %d out of range", off, bodyLen)
		}
		payload := make([]byte, int64(metaLen)+int64(bodyLen))
		if n, err := io.ReadFull(r, payload); err != nil {
			return off, corruptf("offset %d: torn record payload (%d of %d bytes)", off, n, len(payload))
		}
		if crc := crc32.ChecksumIEEE(payload); crc != wantCRC {
			return off, corruptf("offset %d: record checksum %#x, want %#x", off, crc, wantCRC)
		}
		var meta Meta
		dec := json.NewDecoder(bytes.NewReader(payload[:metaLen]))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&meta); err != nil {
			return off, corruptf("offset %d: record meta: %v", off, err)
		}
		rec := scannedRecord{
			Meta:    meta,
			Body:    payload[metaLen:],
			Off:     off,
			BodyOff: off + recHeaderLen + int64(metaLen),
		}
		off += recHeaderLen + int64(len(payload))
		if err := fn(rec); err != nil {
			return off, err
		}
	}
}
