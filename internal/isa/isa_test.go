package isa

import (
	"strings"
	"testing"
)

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b int64
		want bool
	}{
		{CondEQ, 3, 3, true}, {CondEQ, 3, 4, false},
		{CondNE, 3, 4, true}, {CondNE, 3, 3, false},
		{CondLT, -1, 0, true}, {CondLT, 0, 0, false},
		{CondGE, 0, 0, true}, {CondGE, -1, 0, false},
	}
	for _, tc := range cases {
		if got := tc.c.Eval(tc.a, tc.b); got != tc.want {
			t.Errorf("Cond(%d).Eval(%d,%d) = %v, want %v", tc.c, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestProgramAddressing(t *testing.T) {
	b := NewBuilder("t", 0x1000)
	b.Nop().Nop().Halt()
	p := b.MustBuild()
	if got := p.AddrOf(2); got != 0x1008 {
		t.Fatalf("AddrOf(2) = %#x", got)
	}
	idx, err := p.IndexOf(0x1004)
	if err != nil || idx != 1 {
		t.Fatalf("IndexOf = %d, %v", idx, err)
	}
	for _, bad := range []uint64{0x0fff, 0x1002, 0x100c, 0x2000} {
		if _, err := p.IndexOf(bad); err == nil {
			t.Errorf("IndexOf(%#x) accepted", bad)
		}
	}
}

func TestBuilderLabelsAndBranches(t *testing.T) {
	b := NewBuilder("t", 0)
	b.Label("start")
	b.LoadImm(1, 5)
	b.Jmp("end")
	b.Nop()
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Target != 3 {
		t.Fatalf("jmp target = %d, want 3", p.Code[1].Target)
	}
}

func TestBuilderForwardReference(t *testing.T) {
	b := NewBuilder("t", 0)
	b.Br(CondEQ, 1, 2, "later")
	b.Nop()
	b.Label("later")
	b.Halt()
	p := b.MustBuild()
	if p.Code[0].Target != 2 {
		t.Fatalf("forward branch target = %d, want 2", p.Code[0].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t", 0)
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("undefined label not reported: %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("t", 0)
	b.Label("x").Nop().Label("x").Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate label not reported: %v", err)
	}
}

func TestBuilderUndefinedEntry(t *testing.T) {
	b := NewBuilder("t", 0)
	b.Nop()
	b.SetEntry("missing")
	if _, err := b.Build(); err == nil {
		t.Fatal("undefined entry accepted")
	}
}

func TestBuilderEmptyProgram(t *testing.T) {
	if _, err := NewBuilder("t", 0).Build(); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestBuilderData(t *testing.T) {
	b := NewBuilder("t", 0)
	a0 := b.Word(11)
	a1 := b.Words(3)
	b.SetWord(a1+8, 42)
	b.DataSym("tbl", a1)
	b.Nop()
	p := b.MustBuild()
	if a0 != 0 || a1 != 8 {
		t.Fatalf("addresses: %d %d", a0, a1)
	}
	if p.Data[0] != 11 || p.Data[2] != 42 {
		t.Fatalf("data image wrong: %v", p.Data)
	}
	if b.DataAddr("tbl") != a1 {
		t.Fatal("DataSym/DataAddr mismatch")
	}
}

func TestAddrOfLabel(t *testing.T) {
	b := NewBuilder("t", 0x100)
	b.Nop()
	b.Label("h")
	b.Halt()
	addr, ok := b.AddrOfLabel("h")
	if !ok || addr != 0x104 {
		t.Fatalf("AddrOfLabel = %#x, %v", addr, ok)
	}
	if _, ok := b.AddrOfLabel("missing"); ok {
		t.Fatal("missing label resolved")
	}
	if b.Here() != 2 {
		t.Fatalf("Here = %d", b.Here())
	}
}
