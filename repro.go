// Package repro is a from-scratch reproduction of "Target Prediction for
// Indirect Jumps" (Po-Yung Chang, Eric Hao, Yale N. Patt; ISCA 1997): the
// target cache, a branch-history-indexed predictor for indirect-jump
// targets, together with every substrate the paper's evaluation needs —
// BTB, return address stack, two-level direction predictor, path/pattern
// history registers, a small ISA and VM hosting eight SPECint95-like
// workloads, an HPS-like out-of-order timing model, and an experiment
// harness regenerating each of the paper's tables and figures.
//
// This package is the public facade: it re-exports the library's main
// types and entry points so applications need a single import. See
// examples/ for runnable programs and DESIGN.md for the system inventory.
//
// # Quick start
//
//	w, _ := repro.WorkloadByName("perl")
//	cfg := repro.BaselineConfig().WithTargetCache(
//		func() repro.TargetCache {
//			return repro.NewTagless(repro.TaglessConfig{
//				Entries: 512, Scheme: repro.SchemeGshare,
//			})
//		},
//		func() repro.History { return repro.NewPatternHistory(9) },
//	)
//	res := repro.RunAccuracy(w, 1_000_000, cfg)
//	fmt.Println(res.IndirectMispredictRate())
package repro

import (
	"repro/internal/bench"
	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Core predictor types (the paper's contribution).
type (
	// TargetCache is the predictor interface shared by the tagless and
	// tagged variants.
	TargetCache = core.TargetCache
	// TaglessConfig configures a tagless target cache (Figure 10).
	TaglessConfig = core.TaglessConfig
	// TaggedConfig configures a tagged target cache (Figure 11).
	TaggedConfig = core.TaggedConfig
	// TaglessScheme selects GAg / GAs / gshare indexing.
	TaglessScheme = core.TaglessScheme
	// TaggedScheme selects Address / History-Concatenate / History-XOR
	// indexing.
	TaggedScheme = core.TaggedScheme
)

// Tagless index schemes.
const (
	SchemeGAg    = core.SchemeGAg
	SchemeGAs    = core.SchemeGAs
	SchemeGshare = core.SchemeGshare
)

// Tagged index schemes.
const (
	SchemeAddress       = core.SchemeAddress
	SchemeHistoryConcat = core.SchemeHistoryConcat
	SchemeHistoryXor    = core.SchemeHistoryXor
)

// NewTagless builds a tagless target cache.
func NewTagless(cfg TaglessConfig) *core.Tagless { return core.NewTagless(cfg) }

// NewTagged builds a tagged target cache.
func NewTagged(cfg TaggedConfig) *core.Tagged { return core.NewTagged(cfg) }

// Follow-up predictor designs (beyond the paper; see the lineage example).
type (
	// CascadedConfig configures the filtered two-stage predictor of
	// Driesen & Hölzle.
	CascadedConfig = core.CascadedConfig
	// ITTAGEConfig configures the ITTAGE-style geometric-history
	// predictor of Seznec.
	ITTAGEConfig = core.ITTAGEConfig
)

// NewCascaded builds a cascaded indirect-target predictor.
func NewCascaded(cfg CascadedConfig) *core.Cascaded { return core.NewCascaded(cfg) }

// DefaultCascadedConfig returns the default cascade geometry.
func DefaultCascadedConfig() CascadedConfig { return core.DefaultCascadedConfig() }

// NewITTAGE builds an ITTAGE-style predictor.
func NewITTAGE(cfg ITTAGEConfig) *core.ITTAGE { return core.NewITTAGE(cfg) }

// DefaultITTAGEConfig returns the default five-table geometry.
func DefaultITTAGEConfig() ITTAGEConfig { return core.DefaultITTAGEConfig() }

// NewLastTarget builds a pc-indexed last-target predictor (the BTB's
// policy as a composable component).
func NewLastTarget(entries, ways int) *core.LastTarget {
	return core.NewLastTarget(entries, ways)
}

// NewChooser builds a hybrid predictor selecting between two components
// with per-jump 2-bit meta counters.
func NewChooser(a, b TargetCache, metaEntries int) *core.Chooser {
	return core.NewChooser(a, b, metaEntries)
}

// DefaultChooser returns the canonical last-target + tagged-cache hybrid.
func DefaultChooser() *core.Chooser { return core.DefaultChooser() }

// History types (Section 3.1).
type (
	// History supplies the branch history indexing a target cache.
	History = history.Provider
	// PathConfig configures a path history register file.
	PathConfig = history.PathConfig
	// PathFilter selects which branches feed a global path history.
	PathFilter = history.PathFilter
)

// Path history filters.
const (
	FilterControl = history.FilterControl
	FilterBranch  = history.FilterBranch
	FilterCallRet = history.FilterCallRet
	FilterIndJmp  = history.FilterIndJmp
)

// NewPatternHistory returns an n-bit global pattern history.
func NewPatternHistory(n int) History { return history.NewPatternProvider(n) }

// NewPathHistory returns a path history register file.
func NewPathHistory(cfg PathConfig) History { return history.NewPath(cfg) }

// Baseline structures.
type (
	// BTBConfig configures the branch target buffer.
	BTBConfig = btb.Config
	// BTBStrategy selects the BTB's indirect-target update policy.
	BTBStrategy = btb.Strategy
)

// BTB update strategies.
const (
	StrategyDefault = btb.StrategyDefault
	StrategyTwoBit  = btb.StrategyTwoBit
)

// Simulation types.
type (
	// FrontEndConfig assembles BTB + RAS + direction predictor and an
	// optional target cache.
	FrontEndConfig = sim.Config
	// Engine is an instantiated front end.
	Engine = sim.Engine
	// AccuracyResult reports per-class prediction accuracy.
	AccuracyResult = sim.AccuracyResult
	// MachineConfig describes the out-of-order timing model.
	MachineConfig = cpu.Config
	// TimingResult reports cycles, IPC and misprediction counts.
	TimingResult = cpu.Result
)

// BaselineConfig returns the paper's BTB-only front end.
func BaselineConfig() FrontEndConfig { return sim.DefaultConfig() }

// NewEngine instantiates a front end.
func NewEngine(cfg FrontEndConfig) *Engine { return sim.NewEngine(cfg) }

// RunAccuracy measures prediction accuracy over budget instructions.
func RunAccuracy(source TraceFactory, budget int64, cfg FrontEndConfig) AccuracyResult {
	return sim.RunAccuracy(source, budget, cfg)
}

// DefaultMachine returns the paper's machine configuration (8-wide,
// 128-entry window, Table 3 latencies, 16KB data cache).
func DefaultMachine() MachineConfig { return cpu.DefaultConfig() }

// RunTiming simulates budget instructions on the out-of-order machine with
// the given front end.
func RunTiming(source TraceFactory, budget int64, cfg FrontEndConfig, machine MachineConfig) TimingResult {
	return cpu.Run(source.Open(), budget, sim.NewEngine(cfg), machine)
}

// RunTimingEvent is RunTiming on the event-driven validation model.
func RunTimingEvent(source TraceFactory, budget int64, cfg FrontEndConfig, machine MachineConfig) TimingResult {
	return cpu.NewEvent(machine, sim.NewEngine(cfg)).Run(source.Open(), budget)
}

// WindowedResult reports per-window misprediction rates (warm-up and
// steady-state variance diagnostics).
type WindowedResult = sim.WindowedResult

// RunAccuracyWindows is RunAccuracy with windowed accounting.
func RunAccuracyWindows(source TraceFactory, budget int64, windows int, cfg FrontEndConfig) WindowedResult {
	return sim.RunAccuracyWindows(source, budget, windows, cfg)
}

// Timeline captures per-instruction pipeline timing for diagrams.
type Timeline = cpu.Timeline

// RunTimelineDiagram runs the timing model recording the first maxEntries
// instructions' pipeline timing (render with Timeline.String).
func RunTimelineDiagram(source TraceFactory, budget int64, cfg FrontEndConfig, machine MachineConfig, maxEntries int) (TimingResult, *Timeline) {
	return cpu.RunTimeline(source.Open(), budget, sim.NewEngine(cfg), machine, maxEntries)
}

// Trace and workload types.
type (
	// Record is one retired instruction.
	Record = trace.Record
	// TraceSource streams records in program order.
	TraceSource = trace.Source
	// TraceFactory opens repeatable passes over a trace.
	TraceFactory = trace.Factory
	// TraceStats accumulates Table 1 / Figures 1-8 statistics.
	TraceStats = trace.Stats
	// Workload is one of the eight SPECint95-like benchmark programs.
	Workload = workload.Workload
)

// Workloads returns the eight workloads in paper order.
func Workloads() []*Workload { return workload.All() }

// WorkloadByName returns the named workload (compress, gcc, go, ijpeg,
// m88ksim, perl, vortex, xlisp).
func WorkloadByName(name string) (*Workload, error) { return workload.ByName(name) }

// Experiment harness.
type (
	// Experiment reproduces one paper table or figure.
	Experiment = bench.Experiment
	// ExperimentParams sets simulation budgets.
	ExperimentParams = bench.Params
	// Table is a rendered result table.
	Table = stats.Table
)

// Experiments returns every experiment in paper order.
func Experiments() []*Experiment { return bench.All() }

// ExperimentByID returns the named experiment (e.g. "table4").
func ExperimentByID(id string) (*Experiment, error) { return bench.ByID(id) }

// DefaultExperimentParams returns the default simulation budgets.
func DefaultExperimentParams() ExperimentParams { return bench.DefaultParams() }
