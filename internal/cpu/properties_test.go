package cpu

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestWiderMachineNeverSlower checks a monotonicity property of both
// timing models: increasing width and window (all else equal) must not
// increase cycle count.
func TestWiderMachineNeverSlower(t *testing.T) {
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 100_000
	configs := []struct{ width, window int }{
		{1, 16}, {2, 32}, {4, 64}, {8, 128}, {16, 256},
	}
	for _, model := range []string{"fast", "event"} {
		prev := int64(1 << 62)
		for _, c := range configs {
			cfg := DefaultConfig()
			cfg.Width, cfg.Window = c.width, c.window
			var cycles int64
			if model == "fast" {
				cycles = New(cfg, sim.NewEngine(sim.DefaultConfig())).Run(w.Open(), budget).Cycles
			} else {
				cycles = NewEvent(cfg, sim.NewEngine(sim.DefaultConfig())).Run(w.Open(), budget).Cycles
			}
			// Allow 2% slack: wider fetch can shift which instructions
			// share a cycle and perturb cache/predictor interleaving.
			if float64(cycles) > float64(prev)*1.02 {
				t.Errorf("%s model: %d-wide/%d-window slower than previous config (%d > %d)",
					model, c.width, c.window, cycles, prev)
			}
			prev = cycles
		}
	}
}

// TestLongerMemoryLatencyCostsCycles checks the dcache path is live.
func TestLongerMemoryLatencyCostsCycles(t *testing.T) {
	w, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	fast := DefaultConfig()
	slow := DefaultConfig()
	slow.MemLatency = 200
	slow.DCacheBytes = 1024 // force misses
	fast.DCacheBytes = 1024
	a := New(fast, sim.NewEngine(sim.DefaultConfig())).Run(w.Open(), 100_000)
	b := New(slow, sim.NewEngine(sim.DefaultConfig())).Run(w.Open(), 100_000)
	if b.Cycles <= a.Cycles {
		t.Fatalf("200-cycle memory (%d cycles) not slower than 10-cycle (%d)",
			b.Cycles, a.Cycles)
	}
	if a.DCacheMisses != b.DCacheMisses {
		t.Fatalf("same cache geometry must miss identically: %d vs %d",
			a.DCacheMisses, b.DCacheMisses)
	}
}

// TestPerfectPredictionUpperBound: an engine that never mispredicts (we
// approximate with a huge warmed ITTAGE-free config by re-running the same
// trace through a pre-trained engine) must not be slower than the cold
// engine.
func TestSecondPassFasterThanFirst(t *testing.T) {
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 100_000
	engine := sim.NewEngine(sim.DefaultConfig())
	first := New(DefaultConfig(), engine).Run(w.Open(), budget)
	second := New(DefaultConfig(), engine).Run(w.Open(), budget)
	if second.Mispredicts > first.Mispredicts {
		t.Fatalf("trained engine mispredicts more: %d vs %d",
			second.Mispredicts, first.Mispredicts)
	}
	if second.Cycles > first.Cycles {
		t.Fatalf("trained second pass slower: %d vs %d cycles",
			second.Cycles, first.Cycles)
	}
}
