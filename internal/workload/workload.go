// Package workload provides the eight SPECint95-like benchmark programs the
// experiments run, standing in for the paper's compress, gcc, go, ijpeg,
// m88ksim, perl, vortex and xlisp traces.
//
// Three workloads are real programs for the repository's toy ISA, built so
// their indirect jumps arise exactly the way the originals' do:
//
//   - perl: a bytecode interpreter whose main loop dispatches on script
//     tokens through a jump table — one hot static indirect jump whose
//     target sequence is periodic because the interpreted script loops
//     (Section 4.2.3 of the paper explains why path history excels here).
//   - gcc: a compiler-like pass driver: many small functions, each with its
//     own switch over IR node kinds (many static indirect jumps), nodes
//     drawn from a Markov chain so pattern history carries signal.
//   - xlisp: a recursive expression evaluator dispatching on cell type,
//     heavy in calls/returns (return address stack traffic).
//
// The remaining five use the parameterised synthetic program generator in
// synth.go, tuned per benchmark to the indirect-jump site counts, target
// distributions and predictability the paper reports in Table 1 and
// Figures 1-8.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Workload is one named benchmark.
type Workload struct {
	// Name is the benchmark the workload stands in for.
	Name string
	// Description summarises the program's structure.
	Description string
	// Extra marks workloads beyond the paper's SPECint95 set (e.g. the
	// C++-style workload from the paper's future-work section); they are
	// excluded from All() so the paper's tables keep their populations.
	Extra bool

	buildOnce sync.Once
	build     func() *isa.Program
	prog      *isa.Program
}

// Program returns the workload's program, building it on first use.
func (w *Workload) Program() *isa.Program {
	w.buildOnce.Do(func() { w.prog = w.build() })
	return w.prog
}

// Open starts a fresh looping pass over the workload's trace.
func (w *Workload) Open() trace.Source { return vm.NewLooping(w.Program()) }

var _ trace.Factory = (*Workload)(nil)

var registry = map[string]*Workload{}

func register(w *Workload) *Workload {
	if _, dup := registry[w.Name]; dup {
		panic("workload: duplicate " + w.Name)
	}
	registry[w.Name] = w
	return w
}

// ByName returns the named workload.
func ByName(name string) (*Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return w, nil
}

// Names returns all workload names (including extras) in alphabetical
// order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the eight SPECint95-like workloads in paper (alphabetical)
// order.
func All() []*Workload {
	var out []*Workload
	for _, n := range Names() {
		if w := registry[n]; !w.Extra {
			out = append(out, w)
		}
	}
	return out
}

// Extras returns the workloads beyond the paper's benchmark set.
func Extras() []*Workload {
	var out []*Workload
	for _, n := range Names() {
		if w := registry[n]; w.Extra {
			out = append(out, w)
		}
	}
	return out
}

// PerlGcc returns just the perl and gcc workloads, "the two benchmarks with
// the largest number of indirect jumps", which the paper's Tables 4-9
// concentrate on.
func PerlGcc() []*Workload {
	perl, err := ByName("perl")
	if err != nil {
		panic(err)
	}
	gcc, err := ByName("gcc")
	if err != nil {
		panic(err)
	}
	return []*Workload{perl, gcc}
}
