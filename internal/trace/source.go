package trace

// Source is a stream of instruction records in program order.
//
// Next fills *r and reports whether a record was produced; it returns false
// at end of trace. Implementations are single-pass; use a Factory to obtain
// fresh passes over the same (deterministic) trace.
type Source interface {
	Next(r *Record) bool
}

// Factory produces independent, identical passes over a trace. Workloads
// are deterministic, so re-running the factory regenerates the same stream
// without buffering it in memory.
type Factory interface {
	// Open starts a new pass over the trace from the beginning.
	Open() Source
}

// FactoryFunc adapts a function to the Factory interface.
type FactoryFunc func() Source

// Open starts a new pass.
func (f FactoryFunc) Open() Source { return f() }

// SliceSource replays a trace held in memory. The zero value is an empty
// trace.
type SliceSource struct {
	Records []Record
	pos     int
}

// NewSliceSource returns a Source replaying recs.
func NewSliceSource(recs []Record) *SliceSource {
	return &SliceSource{Records: recs}
}

// Next implements Source.
func (s *SliceSource) Next(r *Record) bool {
	if s.pos >= len(s.Records) {
		return false
	}
	*r = s.Records[s.pos]
	s.pos++
	return true
}

// Reset rewinds the source to the start of the trace.
func (s *SliceSource) Reset() { s.pos = 0 }

// Collect drains src into a slice. Intended for tests and small traces.
func Collect(src Source) []Record {
	var out []Record
	var r Record
	for src.Next(&r) {
		out = append(out, r)
	}
	return out
}

// Limit wraps a source, truncating it after n records.
type Limit struct {
	Src  Source
	N    int64
	seen int64
}

// NewLimit returns a Source producing at most n records from src.
// A non-positive n produces an empty trace.
func NewLimit(src Source, n int64) *Limit {
	return &Limit{Src: src, N: n}
}

// Next implements Source.
func (l *Limit) Next(r *Record) bool {
	if l.seen >= l.N {
		return false
	}
	if !l.Src.Next(r) {
		return false
	}
	l.seen++
	return true
}

// Err surfaces the wrapped source's decode error, if any.
func (l *Limit) Err() error { return SourceErr(l.Src) }

// FilterBranches wraps a source, yielding only control-flow records. The
// accuracy simulators use this to skip non-branch instructions cheaply.
type FilterBranches struct {
	Src Source
}

// Next implements Source.
func (f FilterBranches) Next(r *Record) bool {
	for f.Src.Next(r) {
		if r.Class.IsBranch() {
			return true
		}
	}
	return false
}

// Err surfaces the wrapped source's decode error, if any.
func (f FilterBranches) Err() error { return SourceErr(f.Src) }

// Concat chains sources end to end.
type Concat struct {
	Srcs []Source
	idx  int
}

// Next implements Source.
func (c *Concat) Next(r *Record) bool {
	for c.idx < len(c.Srcs) {
		if c.Srcs[c.idx].Next(r) {
			return true
		}
		c.idx++
	}
	return false
}
