package core

import (
	"fmt"

	"repro/internal/cache"
)

// TaggedScheme selects the index/tag split of a tagged target cache
// (Section 4.3.1).
type TaggedScheme uint8

const (
	// SchemeAddress uses the lower address bits for set selection; the
	// higher address bits XORed with the history form the tag. All targets
	// of one jump map to the same set, so low associativity suffers
	// conflict misses.
	SchemeAddress TaggedScheme = iota
	// SchemeHistoryConcat uses the lower history bits for set selection;
	// the higher history bits concatenated with address bits form the tag.
	SchemeHistoryConcat
	// SchemeHistoryXor XORs address and history, using the lower bits of
	// the result for set selection and the higher bits for the tag. This
	// spreads one jump's targets across sets, removing the need for high
	// associativity.
	SchemeHistoryXor
)

// String names the scheme as in Table 7.
func (s TaggedScheme) String() string {
	switch s {
	case SchemeAddress:
		return "Addr"
	case SchemeHistoryConcat:
		return "History Conc"
	case SchemeHistoryXor:
		return "History Xor"
	default:
		return fmt.Sprintf("TaggedScheme(%d)", uint8(s))
	}
}

// TaggedConfig describes a tagged target cache. The paper's tagged caches
// hold 256 entries total ("half the number of entries as that of tagless
// target caches to compensate for the hardware used to store tags") with
// associativity swept from 1 to 16.
type TaggedConfig struct {
	// Entries is the total entry count (sets × ways); a power of two.
	Entries int
	// Ways is the set associativity; must divide Entries and be a power
	// of two.
	Ways   int
	Scheme TaggedScheme
	// HistBits is the number of history bits folded into index and tag
	// (9 or 16 in Table 9). For tagged caches the history length is not
	// limited by the table size "because additional history bits can be
	// stored in the tag fields".
	HistBits int
	// TagBits bounds the stored tag width; 0 means a full tag. Narrower
	// tags model the hardware truncation and admit rare false hits.
	TagBits int
}

// Validate checks the configuration.
func (c TaggedConfig) Validate() error {
	if c.Entries <= 0 || c.Entries&(c.Entries-1) != 0 {
		return fmt.Errorf("core: tagged entries %d not a power of two", c.Entries)
	}
	if c.Ways <= 0 || c.Ways&(c.Ways-1) != 0 || c.Entries%c.Ways != 0 {
		return fmt.Errorf("core: invalid associativity %d for %d entries", c.Ways, c.Entries)
	}
	if c.HistBits < 1 || c.HistBits > 32 {
		return fmt.Errorf("core: invalid history length %d", c.HistBits)
	}
	if c.TagBits < 0 || c.TagBits > 64 {
		return fmt.Errorf("core: invalid tag width %d", c.TagBits)
	}
	return nil
}

// Name returns a short description, e.g. "History Xor 8-way".
func (c TaggedConfig) Name() string {
	return fmt.Sprintf("%s %d-way", c.Scheme, c.Ways)
}

// CostBits returns the configuration's storage cost in bits: 32 bits of
// target per entry (the tagless accounting) plus the stored tag, the
// per-entry LRU state and a valid bit. A pure function of a valid
// configuration, usable without instantiating the cache.
func (c TaggedConfig) CostBits() int {
	tagBits := c.TagBits
	if tagBits == 0 || tagBits > 32 {
		tagBits = 32
	}
	lruBits := log2(c.Ways)
	return c.Entries * (32 + tagBits + lruBits + 1)
}

// Tagged is a tagged target cache (Figure 11): a set-associative cache
// whose payload is the predicted target address. A tag mismatch produces no
// prediction instead of another branch's target, trading capacity for the
// elimination of interference.
type Tagged struct {
	cfg     TaggedConfig
	c       *cache.Cache[uint64]
	sets    int
	setBits int
	tagMask uint64
}

// NewTagged returns a tagged target cache. It panics on invalid
// configuration.
func NewTagged(cfg TaggedConfig) *Tagged {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Entries / cfg.Ways
	t := &Tagged{
		cfg:     cfg,
		c:       cache.New[uint64](sets, cfg.Ways),
		sets:    sets,
		setBits: log2(sets),
		tagMask: ^uint64(0),
	}
	if cfg.TagBits > 0 && cfg.TagBits < 64 {
		t.tagMask = uint64(1)<<cfg.TagBits - 1
	}
	return t
}

// Config returns the configuration.
func (t *Tagged) Config() TaggedConfig { return t.cfg }

// index computes the set index and tag for (pc, hist) under the configured
// scheme.
func (t *Tagged) index(pc, hist uint64) (int, uint64) {
	word := pc >> 2
	h := hist
	if t.cfg.HistBits < 64 {
		h &= uint64(1)<<t.cfg.HistBits - 1
	}
	setMask := uint64(t.sets - 1)
	var set, tag uint64
	switch t.cfg.Scheme {
	case SchemeAddress:
		set = word & setMask
		tag = (word >> t.setBits) ^ h
	case SchemeHistoryConcat:
		set = h & setMask
		tag = (h >> t.setBits) | word<<uint(max(t.cfg.HistBits-t.setBits, 0))
	default: // SchemeHistoryXor
		x := word ^ h
		set = x & setMask
		tag = x >> t.setBits
	}
	return int(set & setMask), tag & t.tagMask
}

// Predict implements TargetCache. A tag miss returns ok=false: the fetch
// engine then has no target-cache prediction and falls back to the BTB.
func (t *Tagged) Predict(pc, hist uint64) (uint64, bool) {
	set, tag := t.index(pc, hist)
	v, ok := t.c.Lookup(set, tag)
	if !ok {
		return 0, false
	}
	return *v, true
}

// Update implements TargetCache, allocating (with LRU replacement) on miss.
func (t *Tagged) Update(pc, hist, target uint64) {
	set, tag := t.index(pc, hist)
	v, _ := t.c.Insert(set, tag)
	*v = target
}

// CostBits implements TargetCache via the configuration's accounting.
func (t *Tagged) CostBits() int { return t.cfg.CostBits() }

// Reset implements TargetCache.
func (t *Tagged) Reset() { t.c.Reset() }

var _ TargetCache = (*Tagged)(nil)
