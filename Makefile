# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race bench bench-json experiments fmt cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The race pass runs the concurrency-sensitive packages in -short mode so
# the heavy experiment sweeps are not repeated under the race detector;
# the dedicated race tests in these packages do not skip on -short.
test: race
	$(GO) test ./...

race:
	$(GO) test -race -short ./internal/workload ./internal/sim ./internal/trace

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the per-experiment wall-time/work baseline used to track the
# parallel runner's performance.
bench-json:
	$(GO) run ./cmd/tcsim -exp all -benchjson BENCH_baseline.json > /dev/null

# Regenerate every paper table and figure at full budgets.
experiments:
	$(GO) run ./cmd/tcsim -exp all

fmt:
	gofmt -w .

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt cpu.prof mem.prof
