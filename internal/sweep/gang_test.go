package sweep

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func planPoints() []Point {
	return []Point{
		{Workload: "perl", Family: "tagless", Scheme: "gshare", History: "pattern", Entries: 64, HistBits: 9},
		{Workload: "perl", Family: "tagless", Scheme: "gshare", History: "pattern", Entries: 128, HistBits: 9},
		{Workload: "perl", Family: "btb", Scheme: "default", Entries: 1024, Ways: 4},
		{Workload: "perl", Family: "tagless", Scheme: "gshare", History: "pattern", Entries: 256, HistBits: 6},
		{Workload: "perl", Family: "tagged", Scheme: "xor", History: "path-indjmp", Entries: 256, Ways: 4, HistBits: 9, TagBits: 32},
		{Workload: "gcc", Family: "tagless", Scheme: "gshare", History: "pattern", Entries: 64, HistBits: 9},
		{Workload: "perl", Family: "tagged", Scheme: "xor", History: "pattern", Entries: 512, Ways: 4, HistBits: 9, TagBits: 32},
	}
}

// TestPlanUnits pins the grouping rule: btb points run direct in place,
// fusable points group by (workload, history scheme) in first-seen order
// across families, and widths chunk the groups.
func TestPlanUnits(t *testing.T) {
	pts := planPoints()

	units := planUnits(pts, 0, len(pts), 0)
	want := [][]int{
		{2},          // btb: direct, in place
		{0, 1, 3, 6}, // perl+pattern: tagless and tagged fuse together
		{4},          // perl+path-indjmp
		{5},          // gcc+pattern: its own trace pass
	}
	if len(units) != len(want) {
		t.Fatalf("auto width planned %d units %v, want %d", len(units), units, len(want))
	}
	for ui, u := range units {
		if len(u) != len(want[ui]) {
			t.Fatalf("unit %d = %v, want %v", ui, u, want[ui])
		}
		for i := range u {
			if u[i] != want[ui][i] {
				t.Fatalf("unit %d = %v, want %v", ui, u, want[ui])
			}
		}
	}

	// Width 1 disables fusion entirely.
	for _, u := range planUnits(pts, 0, len(pts), 1) {
		if len(u) != 1 {
			t.Fatalf("width 1 planned a %d-point unit", len(u))
		}
	}

	// Width 3 chunks the 4-point pattern group.
	var sizes []int
	for _, u := range planUnits(pts, 0, len(pts), 3) {
		sizes = append(sizes, len(u))
	}
	wantSizes := []int{1, 3, 1, 1, 1}
	if len(sizes) != len(wantSizes) {
		t.Fatalf("width 3 unit sizes %v, want %v", sizes, wantSizes)
	}
	for i := range sizes {
		if sizes[i] != wantSizes[i] {
			t.Fatalf("width 3 unit sizes %v, want %v", sizes, wantSizes)
		}
	}

	// Units never cross the [lo, hi) shard window.
	for _, u := range planUnits(pts, 1, 4, 0) {
		for _, i := range u {
			if i < 1 || i >= 4 {
				t.Fatalf("unit %v escapes shard [1,4)", u)
			}
		}
	}
}

// TestPlanGangs pins the -expand summary: passes, points and per-width
// gang counts per workload.
func TestPlanGangs(t *testing.T) {
	pts := planPoints()
	plans := PlanGangs(pts, 32, 0)
	if len(plans) != 2 || plans[0].Workload != "perl" || plans[1].Workload != "gcc" {
		t.Fatalf("plans = %+v, want perl then gcc", plans)
	}
	perl := plans[0]
	if perl.Points != 6 || perl.Passes != 3 {
		t.Errorf("perl plan: %d points in %d passes, want 6 in 3", perl.Points, perl.Passes)
	}
	if perl.Gangs[4] != 1 || perl.Gangs[1] != 2 {
		t.Errorf("perl gang widths = %v, want one 4-gang and two singles", perl.Gangs)
	}
	if perl.MaxStateBytes <= 0 {
		t.Errorf("perl MaxStateBytes = %d, want > 0", perl.MaxStateBytes)
	}
	if g := plans[1]; g.Points != 1 || g.Passes != 1 {
		t.Errorf("gcc plan: %d points in %d passes, want 1 in 1", g.Points, g.Passes)
	}
}

// TestStateBytesAcrossFamilies sanity-checks the planner's footprint
// estimates: positive for every family and monotone in table size.
func TestStateBytesAcrossFamilies(t *testing.T) {
	for _, p := range planPoints() {
		if p.StateBytes() <= 0 {
			t.Errorf("%s: StateBytes = %d, want > 0", p.Key(), p.StateBytes())
		}
	}
	small := Point{Family: "ittage", Stage1: 256, Entries: 128, Tables: 5, TagBits: 9, HistBits: 64, History: "pattern"}
	big := small
	big.Entries = 1024
	if small.StateBytes() >= big.StateBytes() {
		t.Errorf("ittage StateBytes not monotone: %d -> %d", small.StateBytes(), big.StateBytes())
	}
}

// TestPanicRecoveredAsPointError pins the robustness contract: a panic
// inside point simulation (injected via TestPointHook) surfaces as a
// structured per-point sweep error naming the point, never a crash.
func TestPanicRecoveredAsPointError(t *testing.T) {
	spec, err := ParseSpec([]byte(diffSpec))
	if err != nil {
		t.Fatal(err)
	}
	const victim = "gcc/tagless-gshare-e512-h9-pattern"
	TestPointHook = func(key string) {
		if key == victim {
			panic("injected point fault")
		}
	}
	defer func() { TestPointHook = nil }()

	for _, width := range []int{1, 0} {
		_, err := Run(context.Background(), spec, Options{Workers: 2, GangWidth: width})
		if err == nil {
			t.Fatalf("gang=%d: sweep survived a panicking point without error", width)
		}
		var pe *PointError
		if !errors.As(err, &pe) {
			t.Fatalf("gang=%d: error is not a PointError: %v", width, err)
		}
		if !strings.Contains(err.Error(), "injected point fault") || !strings.Contains(err.Error(), victim) {
			t.Errorf("gang=%d: error does not name the fault and point: %v", width, err)
		}
		found := false
		for _, k := range pe.Keys {
			if k == victim {
				found = true
			}
		}
		if !found {
			t.Errorf("gang=%d: PointError.Keys = %v does not include %s", width, pe.Keys, victim)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("gang=%d: PointError carries no stack", width)
		}
	}
}
