package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	pc := uint64(0x10000)
	for i := range recs {
		recs[i] = Record{
			PC:    pc,
			Class: Class(rng.Intn(numClasses)),
			Op:    OpClass(rng.Intn(NumOpClasses)),
		}
		if recs[i].Class.IsBranch() {
			recs[i].Taken = rng.Intn(3) > 0
			if recs[i].Taken {
				recs[i].Target = pc + uint64(rng.Intn(4096))*4 - 2048*4
			}
		}
		if rng.Intn(4) == 0 {
			recs[i].Addr = uint64(rng.Intn(1<<20) * 8)
		}
		if rng.Intn(2) == 0 {
			recs[i].Dst = uint8(rng.Intn(33))
			recs[i].Src1 = uint8(rng.Intn(33))
		}
		if recs[i].Taken {
			pc = recs[i].Target
		} else {
			pc += 4
		}
	}
	return recs
}

func TestCodecV2RoundTrip(t *testing.T) {
	recs := randomRecords(5000, 2)
	var buf bytes.Buffer
	w := NewWriterV2(&buf)
	n, err := CopyV2(w, NewSliceSource(recs))
	if err != nil || n != int64(len(recs)) {
		t.Fatalf("CopyV2 = %d, %v", n, err)
	}
	r := NewReaderV2(&buf)
	got := Collect(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestCodecV2Smaller(t *testing.T) {
	recs := randomRecords(5000, 3)
	var v1, v2 bytes.Buffer
	if _, err := Copy(NewWriter(&v1), NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	if _, err := CopyV2(NewWriterV2(&v2), NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len()/2 {
		t.Errorf("v2 (%d bytes) should be well under half of v1 (%d bytes)",
			v2.Len(), v1.Len())
	}
}

func TestAutoReader(t *testing.T) {
	recs := randomRecords(100, 4)
	for _, mk := range []func(*bytes.Buffer) (int64, error){
		func(b *bytes.Buffer) (int64, error) { return Copy(NewWriter(b), NewSliceSource(recs)) },
		func(b *bytes.Buffer) (int64, error) { return CopyV2(NewWriterV2(b), NewSliceSource(recs)) },
	} {
		var buf bytes.Buffer
		if _, err := mk(&buf); err != nil {
			t.Fatal(err)
		}
		src, err := NewAutoReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got := Collect(src)
		if len(got) != len(recs) || got[50] != recs[50] {
			t.Fatalf("auto-reader mismatch: %d records", len(got))
		}
	}
	if _, err := NewAutoReader(bytes.NewReader([]byte{9, 9, 9, 9, 0, 0, 0, 0})); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestCodecV2NeverPanicsOnGarbage feeds random bytes to the decoder: it
// must fail cleanly (error or EOF), never panic or loop.
func TestCodecV2NeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		r := NewReaderV2(bytes.NewReader(data))
		var rec Record
		for i := 0; r.Next(&rec) && i < 100000; i++ {
		}
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Also with a valid header followed by garbage.
	f2 := func(data []byte) bool {
		var buf bytes.Buffer
		w := NewWriterV2(&buf)
		if err := w.Flush(); err != nil {
			return false
		}
		buf.Write(data)
		r := NewReaderV2(&buf)
		var rec Record
		for i := 0; r.Next(&rec) && i < 100000; i++ {
		}
		return true
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecV2TruncationReported(t *testing.T) {
	recs := randomRecords(10, 5)
	var buf bytes.Buffer
	if _, err := CopyV2(NewWriterV2(&buf), NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncate in the middle of the final record's payload.
	r := NewReaderV2(bytes.NewReader(data[:len(data)-1]))
	var rec Record
	n := 0
	for r.Next(&rec) {
		n++
	}
	if n == len(recs) {
		t.Fatal("truncated trace decoded completely")
	}
	if r.Err() == nil {
		t.Fatal("mid-record truncation not reported")
	}
}
