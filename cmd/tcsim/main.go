// Command tcsim runs the paper-reproduction experiments and prints their
// tables.
//
// Usage:
//
//	tcsim -list
//	tcsim -exp table4
//	tcsim -exp all -n 5000000 -t 2000000 -parallel 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/stats"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (see -list), or \"all\"")
		list       = flag.Bool("list", false, "list experiments and exit")
		nAcc       = flag.Int64("n", 0, "accuracy-simulation instruction budget (default 2M)")
		nTime      = flag.Int64("t", 0, "timing-simulation instruction budget (default 1M)")
		model      = flag.String("model", "fast", "timing model: fast | event")
		format     = flag.String("format", "text", "output format: text | json | csv")
		parallel   = flag.Int("parallel", 0, "simulation cells run concurrently per experiment (0 = one per CPU, 1 = serial)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchJSON  = flag.String("benchjson", "", "write per-experiment wall time and work counters to this JSON file")
		quiet      = flag.Bool("quiet", false, "suppress the per-experiment summary on stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	params := bench.DefaultParams()
	if *nAcc > 0 {
		params.AccuracyBudget = *nAcc
	}
	if *nTime > 0 {
		params.TimingBudget = *nTime
	}
	if *parallel > 0 {
		params.Parallel = *parallel
	}
	switch *model {
	case "fast":
	case "event":
		params.EventModel = true
	default:
		fmt.Fprintf(os.Stderr, "unknown timing model %q (want fast or event)\n", *model)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	var toRun []*bench.Experiment
	if *exp == "all" {
		toRun = bench.All()
	} else {
		e, err := bench.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		toRun = append(toRun, e)
	}

	type jsonExperiment struct {
		ID     string         `json:"id"`
		Title  string         `json:"title"`
		Tables []*stats.Table `json:"tables"`
	}
	var jsonOut []jsonExperiment

	// benchRecord is one entry of the -benchjson report, keyed by
	// experiment id.
	type benchRecord struct {
		WallMS       float64 `json:"wall_ms"`
		Cells        int64   `json:"cells"`
		Instructions int64   `json:"instructions"`
	}
	benchOut := make(map[string]benchRecord, len(toRun))

	for _, e := range toRun {
		before := bench.SnapshotStats()
		start := time.Now()
		tables := e.Run(params)
		wall := time.Since(start)
		work := bench.SnapshotStats().Sub(before)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "tcsim: %-16s %8.1f ms  %4d cells  %12d instructions\n",
				e.ID, float64(wall.Microseconds())/1000, work.Cells, work.Instructions)
		}
		benchOut[e.ID] = benchRecord{
			WallMS:       float64(wall.Microseconds()) / 1000,
			Cells:        work.Cells,
			Instructions: work.Instructions,
		}
		switch *format {
		case "json":
			jsonOut = append(jsonOut, jsonExperiment{e.ID, e.Title, tables})
		case "csv":
			for _, table := range tables {
				fmt.Printf("# %s: %s\n", e.ID, table.Title)
				if err := table.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		case "text":
			fmt.Printf("== %s: %s ==\n\n", e.ID, e.Title)
			for _, table := range tables {
				table.Render(os.Stdout)
				fmt.Println()
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown output format %q\n", *format)
			os.Exit(2)
		}
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(benchOut)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
