// Package client is the upload side of tcperf: a retrying HTTP client
// used by `tcsim -upload` and `tcbenchdiff -upload`. Its contract mirrors
// the server's durability contract:
//
//   - retries are safe because uploads are idempotent (content-hash
//     keys): a retry after an ambiguous failure can at worst produce a
//     "duplicate": true ack, never a second row;
//   - transient failures (connection errors, timeouts, 429, 5xx) retry
//     with capped exponential backoff plus jitter, honoring the server's
//     Retry-After hint; permanent failures (4xx) do not retry;
//   - when the server stays unreachable and an outbox directory is
//     configured, the upload spools to disk (atomic temp+rename) and a
//     later FlushOutbox delivers it — results survive the server being
//     down exactly like they survive the server crashing.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/perfstore"
)

// Config tunes a Client. The zero value of every field selects a default.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8123".
	BaseURL string
	// HTTPClient defaults to a client with a 30s total-request timeout.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per upload (default 5).
	MaxAttempts int
	// BaseBackoff is the first retry delay (default 100ms); each retry
	// doubles it up to MaxBackoff (default 5s), then jitters.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Outbox, when set, is a directory where uploads that exhaust their
	// attempts are spooled for a later FlushOutbox.
	Outbox string
	// Sleep and Rand are test hooks; defaults are time.Sleep (made
	// context-aware) and the global rand source.
	Sleep func(time.Duration)
	Rand  func() float64
}

// Client uploads results to a tcperf server. Safe for concurrent use.
type Client struct {
	cfg Config
}

// New builds a Client. BaseURL must be non-empty.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: BaseURL must be set")
	}
	if _, err := url.Parse(cfg.BaseURL); err != nil {
		return nil, fmt.Errorf("client: bad BaseURL: %w", err)
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Float64
	}
	return &Client{cfg: cfg}, nil
}

// Upload is one result payload bound for the server.
type Upload struct {
	Kind       string `json:"kind"`
	Machine    string `json:"machine"`
	Commit     string `json:"commit"`
	Experiment string `json:"experiment"`
	// Schema optionally names the body's wire format (for example
	// "go-benchfmt/v1"); it travels as descriptive metadata and does not
	// change the content-hash identity of the upload.
	Schema string `json:"schema,omitempty"`
	Body   []byte `json:"body"`
}

// Result reports how an Upload ended.
type Result struct {
	// ID is the content-hash row ID (empty when Spooled).
	ID string
	// Duplicate is true when the server already held this content — the
	// normal outcome of retrying an upload whose first ack was lost.
	Duplicate bool
	// Spooled is true when the server was unreachable and the payload
	// went to the outbox instead; SpoolPath names the file.
	Spooled   bool
	SpoolPath string
	// Attempts counts tries, including the successful one.
	Attempts int
}

// errPermanent wraps a failure that retrying cannot fix.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// Do uploads one payload, retrying transient failures. When every attempt
// fails and an outbox is configured, the payload is spooled and Do
// returns a Result with Spooled set and a nil error.
func (c *Client) Do(ctx context.Context, up Upload) (Result, error) {
	res, err := c.tryUpload(ctx, up)
	if err == nil {
		return res, nil
	}
	var perm errPermanent
	if errors.As(err, &perm) || c.cfg.Outbox == "" || ctx.Err() != nil {
		return res, err
	}
	path, serr := c.spool(up)
	if serr != nil {
		return res, errors.Join(err, serr)
	}
	res.Spooled = true
	res.SpoolPath = path
	return res, nil
}

// tryUpload runs the retry loop without the outbox fallback.
func (c *Client) tryUpload(ctx context.Context, up Upload) (Result, error) {
	var res Result
	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		res.Attempts = attempt
		ack, retryAfter, err := c.once(ctx, up)
		if err == nil {
			res.ID = ack.ID
			res.Duplicate = ack.Duplicate
			return res, nil
		}
		lastErr = err
		if errors.As(err, &errPermanent{}) || ctx.Err() != nil {
			return res, err
		}
		if attempt == c.cfg.MaxAttempts {
			break
		}
		if err := c.sleep(ctx, c.backoff(attempt, retryAfter)); err != nil {
			return res, errors.Join(lastErr, err)
		}
	}
	return res, fmt.Errorf("client: upload failed after %d attempts: %w", res.Attempts, lastErr)
}

// uploadAck mirrors the server's UploadResponse.
type uploadAck struct {
	ID        string `json:"id"`
	Duplicate bool   `json:"duplicate"`
}

// once performs a single upload attempt. A non-zero retryAfter carries
// the server's Retry-After hint.
func (c *Client) once(ctx context.Context, up Upload) (ack uploadAck, retryAfter time.Duration, err error) {
	q := url.Values{}
	q.Set("kind", up.Kind)
	q.Set("machine", up.Machine)
	q.Set("commit", up.Commit)
	q.Set("experiment", up.Experiment)
	if up.Schema != "" {
		q.Set("schema", up.Schema)
	}
	u := c.cfg.BaseURL + "/api/v1/upload?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(up.Body))
	if err != nil {
		return ack, 0, errPermanent{err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return ack, 0, err // connection refused/reset, timeout: transient
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ack); err != nil {
			// The row may be durable server-side; retrying is safe.
			return ack, 0, fmt.Errorf("client: decoding ack: %w", err)
		}
		return ack, 0, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		return ack, retryAfter, fmt.Errorf("client: server busy: %s", readErr(resp))
	case resp.StatusCode >= 500:
		return ack, 0, fmt.Errorf("client: server error %d: %s", resp.StatusCode, readErr(resp))
	default:
		return ack, 0, errPermanent{fmt.Errorf("client: rejected with %d: %s", resp.StatusCode, readErr(resp))}
	}
}

func readErr(resp *http.Response) string {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return strings.TrimSpace(string(b))
}

// backoff computes the delay before the next attempt: capped exponential
// with half-width jitter, floored at the server's Retry-After hint so a
// shedding server is never hammered earlier than it asked.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.cfg.BaseBackoff << (attempt - 1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	// Jitter into [d/2, d): synchronized clients desynchronize instead of
	// re-colliding on the next retry wave.
	d = d/2 + time.Duration(c.cfg.Rand()*float64(d/2))
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// sleep waits d, returning early with the context's error if cancelled.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.cfg.Sleep != nil {
		c.cfg.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ---- outbox spooling ----

// spoolEnvelope is the on-disk shape of one spooled upload. Body is
// base64 via encoding/json's []byte handling.
type spoolEnvelope struct {
	Upload
	SpooledUnixMS int64 `json:"spooled_unix_ms"`
}

const spoolExt = ".upload.json"

// spool writes the upload into the outbox atomically (temp + rename), so
// a crash mid-spool never leaves a half-written envelope with the
// deliverable name.
func (c *Client) spool(up Upload) (string, error) {
	if err := os.MkdirAll(c.cfg.Outbox, 0o755); err != nil {
		return "", err
	}
	id := perfstore.ContentID(up.Kind, up.Machine, up.Commit, up.Experiment, up.Body)
	path := filepath.Join(c.cfg.Outbox, id+spoolExt)
	raw, err := json.MarshalIndent(spoolEnvelope{Upload: up, SpooledUnixMS: time.Now().UnixMilli()}, "", "  ")
	if err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(c.cfg.Outbox, ".spool-*")
	if err != nil {
		return "", err
	}
	_, werr := tmp.Write(raw)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return "", werr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return path, nil
}

// FlushOutbox tries to deliver every spooled upload, removing the ones
// that succeed (or turn out to be duplicates). It returns how many were
// sent and how many remain; err reports the first delivery failure.
func (c *Client) FlushOutbox(ctx context.Context) (sent, remaining int, err error) {
	entries, derr := os.ReadDir(c.cfg.Outbox)
	if derr != nil {
		if os.IsNotExist(derr) {
			return 0, 0, nil
		}
		return 0, 0, derr
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), spoolExt) {
			continue
		}
		path := filepath.Join(c.cfg.Outbox, e.Name())
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			remaining++
			if err == nil {
				err = rerr
			}
			continue
		}
		var env spoolEnvelope
		if jerr := json.Unmarshal(raw, &env); jerr != nil {
			remaining++
			if err == nil {
				err = fmt.Errorf("client: outbox %s: %w", e.Name(), jerr)
			}
			continue
		}
		if _, uerr := c.tryUpload(ctx, env.Upload); uerr != nil {
			remaining++
			if err == nil {
				err = uerr
			}
			continue
		}
		os.Remove(path)
		sent++
	}
	return sent, remaining, err
}

// ---- query helpers (used by tcperf's smoke test and worked examples) ----

// Record fetches a stored body by ID, byte-identical to the upload.
func (c *Client) Record(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/api/v1/record/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: record %s: status %d: %s", id, resp.StatusCode, readErr(resp))
	}
	return io.ReadAll(io.LimitReader(resp.Body, perfstore.MaxBodyBytes))
}

// Query lists records matching the filter fields of q.
func (c *Client) Query(ctx context.Context, q perfstore.Query) ([]perfstore.Meta, error) {
	vals := url.Values{}
	for name, v := range map[string]string{
		"kind": q.Kind, "machine": q.Machine, "commit": q.Commit, "experiment": q.Experiment,
	} {
		if v != "" {
			vals.Set(name, v)
		}
	}
	if q.Limit > 0 {
		vals.Set("limit", strconv.Itoa(q.Limit))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/api/v1/query?"+vals.Encode(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: query: status %d: %s", resp.StatusCode, readErr(resp))
	}
	var metas []perfstore.Meta
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&metas); err != nil {
		return nil, err
	}
	return metas, nil
}

// Fingerprint derives a stable machine identity for upload keys:
// hostname/os/arch/cpu-count, sanitized to the server's field charset.
func Fingerprint() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "unknown-host"
	}
	var b strings.Builder
	for _, r := range host {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return fmt.Sprintf("%s/%s/%s/%d", b.String(), runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}
