package bench

import "testing"

// TestAllPaperClaimsHold runs every executable claim at a moderate budget:
// this is the reproduction's strongest regression test — if a workload or
// predictor change breaks one of the paper's findings, it fails here.
func TestAllPaperClaimsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("runs dozens of simulations")
	}
	p := Params{AccuracyBudget: 600_000, TimingBudget: 100_000}
	for _, c := range Claims() {
		c := c
		t.Run(c.Statement[:min(40, len(c.Statement))], func(t *testing.T) {
			msg, ok := c.Check(p)
			if !ok {
				t.Errorf("claim %d failed: %s\n  measured: %s", c.ID, c.Statement, msg)
			} else {
				t.Logf("claim %d: %s", c.ID, msg)
			}
		})
	}
}

func TestVerifyExperimentRegistered(t *testing.T) {
	e, err := ByID("verify")
	if err != nil {
		t.Fatal(err)
	}
	if e.Title == "" {
		t.Fatal("verify experiment has no title")
	}
	if len(Claims()) != 8 {
		t.Fatalf("claims = %d, want 8", len(Claims()))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
