package bench

import (
	"sync"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Cell scheduling: every experiment decomposes into independent simulation
// cells — each a pure function of a memoized replay cursor and a predictor
// configuration. Experiments enqueue cells into a cellGroup, each cell
// writing its result into a pre-allocated slot; run executes them on a
// bounded worker pool and the experiment then renders its tables from the
// slots in enqueue order. Because rendering is serial and positional, the
// output is byte-identical at any worker count, including 1.

type cellGroup struct {
	workers int
	cells   []func()
}

func newCellGroup(p Params) *cellGroup { return &cellGroup{workers: p.workers()} }

// add enqueues one cell. Cells must not depend on each other's slots.
func (g *cellGroup) add(fn func()) { g.cells = append(g.cells, fn) }

// cell enqueues fn and returns the slot its result lands in once run
// returns.
func cell[T any](g *cellGroup, fn func() T) *T {
	out := new(T)
	g.add(func() { *out = fn() })
	return out
}

// run executes all enqueued cells, at most g.workers at a time, and clears
// the queue. It returns only when every cell has finished.
func (g *cellGroup) run() {
	cells := g.cells
	g.cells = nil
	cellsExecuted.Add(int64(len(cells)))
	if g.workers <= 1 || len(cells) <= 1 {
		for _, fn := range cells {
			fn()
		}
		return
	}
	workers := g.workers
	if workers > len(cells) {
		workers = len(cells)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(cells)) {
					return
				}
				cells[i]()
			}
		}()
	}
	wg.Wait()
}

// ---- process-wide counters (the perf measurement hook) ----

var (
	cellsExecuted   atomic.Int64
	instructionsSim atomic.Int64
)

// RunStats counts simulation work done process-wide; tcsim diffs snapshots
// around each experiment for its stderr summary and BENCH_baseline.json.
type RunStats struct {
	// Cells is the number of simulation cells executed.
	Cells int64
	// Instructions is the number of instructions pushed through the
	// accuracy and timing simulators.
	Instructions int64
}

// SnapshotStats returns the current counter values.
func SnapshotStats() RunStats {
	return RunStats{Cells: cellsExecuted.Load(), Instructions: instructionsSim.Load()}
}

// Sub returns the counter deltas since an earlier snapshot.
func (s RunStats) Sub(earlier RunStats) RunStats {
	return RunStats{Cells: s.Cells - earlier.Cells, Instructions: s.Instructions - earlier.Instructions}
}

// ---- replay-backed simulation kernels ----
//
// All experiment cells go through these wrappers: they swap the live VM for
// the workload's memoized trace replay (so the VM runs at most once per
// (workload, budget) key across the whole suite) and account simulated
// instructions.

// runAccuracy is sim.RunAccuracy over the memoized replay.
func runAccuracy(w *workload.Workload, p Params, cfg sim.Config) sim.AccuracyResult {
	res := sim.RunAccuracy(w.Replay(p.AccuracyBudget), p.AccuracyBudget, cfg)
	instructionsSim.Add(res.Instructions)
	return res
}

// runAccuracyFlushes is sim.RunAccuracyWithFlushes over the memoized
// replay.
func runAccuracyFlushes(w *workload.Workload, p Params, interval int64, cfg sim.Config) sim.AccuracyResult {
	res := sim.RunAccuracyWithFlushes(w.Replay(p.AccuracyBudget), p.AccuracyBudget, interval, cfg)
	instructionsSim.Add(res.Instructions)
	return res
}

// runTiming is cpu.Run (the fast one-pass model) over the memoized replay
// with an explicit machine configuration.
func runTiming(w *workload.Workload, p Params, cfg sim.Config, mc cpu.Config) cpu.Result {
	res := cpu.Run(w.Replay(p.TimingBudget).Open(), p.TimingBudget, sim.NewEngine(cfg), mc)
	instructionsSim.Add(res.Instructions)
	return res
}

// runTraceStats consumes the memoized replay into trace statistics.
func runTraceStats(w *workload.Workload, p Params) *trace.Stats {
	st := trace.NewStats().Consume(w.Replay(p.AccuracyBudget).Open())
	instructionsSim.Add(p.AccuracyBudget)
	return st
}
