package btb

import (
	"testing"
	"testing/quick"
)

func TestRASPushPop(t *testing.T) {
	s := NewRAS(4)
	if _, ok := s.Pop(); ok {
		t.Fatal("pop from empty stack succeeded")
	}
	s.Push(0x100)
	s.Push(0x200)
	if got, ok := s.Peek(); !ok || got != 0x200 {
		t.Fatalf("peek = %#x, %v", got, ok)
	}
	if got, _ := s.Pop(); got != 0x200 {
		t.Fatalf("pop = %#x, want 0x200", got)
	}
	if got, _ := s.Pop(); got != 0x100 {
		t.Fatalf("pop = %#x, want 0x100", got)
	}
	if s.Depth() != 0 {
		t.Fatalf("depth = %d, want 0", s.Depth())
	}
}

func TestRASOverflowWraps(t *testing.T) {
	s := NewRAS(2)
	s.Push(1)
	s.Push(2)
	s.Push(3) // overwrites 1
	if got, _ := s.Pop(); got != 3 {
		t.Fatalf("pop = %d, want 3", got)
	}
	if got, _ := s.Pop(); got != 2 {
		t.Fatalf("pop = %d, want 2", got)
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("entry 1 should have been overwritten")
	}
}

func TestRASReset(t *testing.T) {
	s := NewRAS(4)
	s.Push(1)
	s.Reset()
	if s.Depth() != 0 {
		t.Fatal("reset did not empty stack")
	}
	if _, ok := s.Peek(); ok {
		t.Fatal("peek after reset succeeded")
	}
}

func TestRASBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRAS(0) did not panic")
		}
	}()
	NewRAS(0)
}

// Property: for any push/pop sequence that stays within capacity, the RAS
// behaves exactly like an unbounded stack.
func TestRASMatchesStackWithinCapacity(t *testing.T) {
	f := func(ops []uint8) bool {
		const capacity = 8
		s := NewRAS(capacity)
		var ref []uint64
		for i, op := range ops {
			if op%2 == 0 && len(ref) < capacity {
				v := uint64(i) * 4
				s.Push(v)
				ref = append(ref, v)
			} else {
				got, ok := s.Pop()
				if len(ref) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := ref[len(ref)-1]
				ref = ref[:len(ref)-1]
				if !ok || got != want {
					return false
				}
			}
		}
		return s.Depth() == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
