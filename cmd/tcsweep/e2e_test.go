package main

// End-to-end interrupt/resume and publish campaign against the real
// tcsweep binary:
//
//   - SIGINT drain: the run checkpoints completed shards, exits asking to
//     be resumed, and the resumed run's report is byte-identical to an
//     uninterrupted one;
//   - SIGKILL (kill -9): same contract with no chance to drain — the
//     atomic manifest protocol alone must carry the run;
//   - publish: the sweep/v1 document uploads to a live tcperf server,
//     queries back byte-identical, and parses as a sweep document.
//
// CI runs these as the sweep smoke job (make sweep-smoke).

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/perfstore"
	"repro/internal/perfstore/client"
	"repro/internal/sweep"
)

// e2eSpec is small enough to finish in well under a second unthrottled,
// and has enough shards (at -shard 1) to interrupt reliably throttled.
const e2eSpec = `{
	"name": "e2e",
	"budget": 20000,
	"workloads": ["perl"],
	"grids": [
		{"family": "btb", "entries": [1024, 2048], "ways": [4]},
		{"family": "tagless", "schemes": ["gshare"], "entries": "64..1024*2", "hist_bits": [6, 9]},
		{"family": "ittage", "entries": [64], "tables": [3]}
	]
}`

var binOnce struct {
	sync.Once
	tcsweep string
	tcperf  string
	err     error
}

// buildBinaries compiles cmd/tcsweep and cmd/tcperf once per test run.
func buildBinaries(t *testing.T) (tcsweep, tcperf string) {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "tcsweep-e2e-*")
		if err != nil {
			binOnce.err = err
			return
		}
		for _, b := range []struct {
			name string
			dst  *string
		}{
			{"tcsweep", &binOnce.tcsweep},
			{"tcperf", &binOnce.tcperf},
		} {
			bin := filepath.Join(dir, b.name)
			out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/"+b.name).CombinedOutput()
			if err != nil {
				binOnce.err = fmt.Errorf("go build %s: %v\n%s", b.name, err, out)
				return
			}
			*b.dst = bin
		}
	})
	if binOnce.err != nil {
		t.Fatal(binOnce.err)
	}
	return binOnce.tcsweep, binOnce.tcperf
}

func writeSpec(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, []byte(e2eSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// referenceRun runs the spec to completion with no manifest and returns
// the rendered frontier report.
func referenceRun(t *testing.T, bin, specPath string) []byte {
	t.Helper()
	out, err := exec.Command(bin, "-spec", specPath, "-quiet", "-workers", "2").Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return out
}

// interruptAndResume starts a throttled run, fires sig once the manifest
// holds at least one shard, waits for the child to die, and returns the
// manifest path for the resumed run.
func interruptAndResume(t *testing.T, bin, specPath string, sig syscall.Signal, want []byte) {
	t.Helper()
	dir := t.TempDir()
	manifest := filepath.Join(dir, "sweep.manifest")

	cmd := exec.Command(bin,
		"-spec", specPath, "-resume", manifest, "-shard", "1",
		"-throttle", "100ms", "-workers", "2", "-quiet")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the first durable checkpoint, then kill mid-run. The
	// throttle guarantees the run is still in flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(manifest); err == nil && bytes.Contains(data, []byte(`"results"`)) {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("no checkpoint appeared within 10s; stderr:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err == nil {
		t.Fatalf("interrupted run exited 0; stderr:\n%s", stderr.String())
	}
	if sig == syscall.SIGINT && !strings.Contains(stderr.String(), "-resume") {
		t.Errorf("SIGINT drain did not suggest resuming; stderr:\n%s", stderr.String())
	}

	// The manifest must reject a different spec before the real resume.
	changed := filepath.Join(dir, "changed.json")
	if err := os.WriteFile(changed, []byte(strings.Replace(e2eSpec, "20000", "40000", 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-spec", changed, "-resume", manifest, "-shard", "1", "-quiet").CombinedOutput()
	if err == nil || !strings.Contains(string(out), "different sweep") {
		t.Fatalf("changed spec resumed against old manifest: err=%v out:\n%s", err, out)
	}

	// Resume at a different worker count; the report must be
	// byte-identical to the uninterrupted reference.
	resumeCmd := exec.Command(bin, "-spec", specPath, "-resume", manifest, "-shard", "1", "-workers", "4")
	var resumedOut, resumedErr bytes.Buffer
	resumeCmd.Stdout = &resumedOut
	resumeCmd.Stderr = &resumedErr
	if err := resumeCmd.Run(); err != nil {
		t.Fatalf("resume: %v\n%s", err, resumedErr.String())
	}
	if !strings.Contains(resumedErr.String(), "resuming:") {
		t.Errorf("resume did not report recorded shards; stderr:\n%s", resumedErr.String())
	}
	if !bytes.Equal(resumedOut.Bytes(), want) {
		t.Errorf("resumed report differs from uninterrupted run:\n--- resumed\n%s\n--- reference\n%s",
			resumedOut.String(), want)
	}
}

func TestE2ESigintResume(t *testing.T) {
	tcsweepBin, _ := buildBinaries(t)
	specPath := writeSpec(t, t.TempDir())
	want := referenceRun(t, tcsweepBin, specPath)
	interruptAndResume(t, tcsweepBin, specPath, syscall.SIGINT, want)
}

func TestE2EKillNineResume(t *testing.T) {
	tcsweepBin, _ := buildBinaries(t)
	specPath := writeSpec(t, t.TempDir())
	want := referenceRun(t, tcsweepBin, specPath)
	interruptAndResume(t, tcsweepBin, specPath, syscall.SIGKILL, want)
}

// TestE2EPublish runs a sweep with -doc and -upload against a live tcperf
// server, then queries the document back and checks it is byte-identical
// and parses as sweep/v1.
func TestE2EPublish(t *testing.T) {
	tcsweepBin, tcperfBin := buildBinaries(t)
	dir := t.TempDir()
	specPath := writeSpec(t, dir)

	// Start tcperf serve on a random port.
	srv := exec.Command(tcperfBin, "serve", "-dir", filepath.Join(dir, "store"), "-addr", "127.0.0.1:0")
	stderrPipe, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Signal(syscall.SIGTERM)
		srv.Wait()
	}()
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "tcperf: listening on "); ok {
				select {
				case addrCh <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	var baseURL string
	select {
	case addr := <-addrCh:
		baseURL = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("tcperf did not report a listen address")
	}

	docPath := filepath.Join(dir, "doc.json")
	out, err := exec.Command(tcsweepBin,
		"-spec", specPath, "-quiet", "-workers", "2",
		"-doc", docPath,
		"-upload", baseURL, "-commit", "e2e-test").CombinedOutput()
	if err != nil {
		t.Fatalf("tcsweep upload run: %v\n%s", err, out)
	}
	local, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}

	c, err := client.New(client.Config{BaseURL: baseURL})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	metas, err := c.Query(ctx, perfstore.Query{Kind: "sweep", Experiment: "e2e"})
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 {
		t.Fatalf("query returned %d sweep records, want 1: %+v", len(metas), metas)
	}
	if metas[0].Schema != sweep.DocumentSchema {
		t.Errorf("stored schema = %q, want %q", metas[0].Schema, sweep.DocumentSchema)
	}
	remote, err := c.Record(ctx, metas[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remote, local) {
		t.Error("stored sweep document differs from the local -doc file")
	}
	doc, err := sweep.ParseDocument(remote)
	if err != nil {
		t.Fatalf("stored document does not parse as sweep/v1: %v", err)
	}
	if doc.Name != "e2e" || len(doc.Rows) == 0 {
		t.Fatalf("stored document lost content: name=%q rows=%d", doc.Name, len(doc.Rows))
	}

	// Re-uploading the identical document is a no-op on the server.
	out, err = exec.Command(tcsweepBin,
		"-spec", specPath, "-quiet", "-workers", "2",
		"-upload", baseURL, "-commit", "e2e-test").CombinedOutput()
	if err != nil {
		t.Fatalf("tcsweep re-upload: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "already uploaded") {
		t.Errorf("re-upload was not deduplicated:\n%s", out)
	}
}
