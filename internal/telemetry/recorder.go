package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Key identifies one simulation cell's telemetry: the experiment it ran
// under, the benchmark it simulated, and the predictor configuration.
// Empty components are omitted from the rendered label.
type Key struct {
	Experiment string `json:"experiment,omitempty"`
	Workload   string `json:"workload,omitempty"`
	Config     string `json:"config,omitempty"`
}

// String renders the "experiment/workload/config" label, skipping empty
// parts — the same label shape bench.CellError uses.
func (k Key) String() string {
	out := ""
	for _, p := range []string{k.Experiment, k.Workload, k.Config} {
		if p == "" {
			continue
		}
		if out != "" {
			out += "/"
		}
		out += p
	}
	return out
}

func (k Key) less(o Key) bool {
	if k.Experiment != o.Experiment {
		return k.Experiment < o.Experiment
	}
	if k.Workload != o.Workload {
		return k.Workload < o.Workload
	}
	return k.Config < o.Config
}

// Recorder is the run-level telemetry sink: simulation cells merge their
// private Collectors into it as they complete, and it tallies run-level
// execution metrics (cells started/failed/recovered, worker busy time).
// All methods are safe for concurrent use and nil-safe, so callers thread
// a possibly-nil *Recorder through without guarding every call site.
type Recorder struct {
	cfg Config

	mu    sync.Mutex
	cells map[Key]*Collector

	cellsStarted   atomic.Int64
	cellsFailed    atomic.Int64
	cellsRecovered atomic.Int64
	busyNS         atomic.Int64
}

// NewRecorder returns an empty recorder whose collectors use cfg.
func NewRecorder(cfg Config) *Recorder {
	return &Recorder{cfg: cfg.withDefaults(), cells: make(map[Key]*Collector)}
}

// NewCollector returns a fresh per-cell collector, or nil when r is nil —
// so disabled telemetry costs callers exactly one nil check.
func (r *Recorder) NewCollector() *Collector {
	if r == nil {
		return nil
	}
	return NewCollector(r.cfg)
}

// Merge folds a completed cell's collector into the recorder under k.
// Merging the same key twice accumulates (a cell may run several
// simulation kernels). Nil recorder or collector is a no-op.
func (r *Recorder) Merge(k Key, c *Collector) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.cells[k]; ok {
		prev.merge(c)
		return
	}
	r.cells[k] = c
}

// CellStarted counts one simulation cell beginning execution.
func (r *Recorder) CellStarted() {
	if r != nil {
		r.cellsStarted.Add(1)
	}
}

// CellFailed counts one cell that completed with an error.
func (r *Recorder) CellFailed() {
	if r != nil {
		r.cellsFailed.Add(1)
	}
}

// CellRecovered counts one cell whose failure was a recovered panic (a
// subset of CellFailed).
func (r *Recorder) CellRecovered() {
	if r != nil {
		r.cellsRecovered.Add(1)
	}
}

// AddBusy accounts d of worker busy time (one cell's wall clock).
func (r *Recorder) AddBusy(d time.Duration) {
	if r != nil {
		r.busyNS.Add(int64(d))
	}
}

// RunInfo carries the run-level facts only the caller knows (the recorder
// cannot see the process clock, the memo, or the worker count).
type RunInfo struct {
	// Workers is the configured worker-pool size.
	Workers int
	// Wall is the run's total wall-clock time.
	Wall time.Duration
	// Instructions is the total simulated instruction count.
	Instructions int64
	// MemoCaptures and MemoHits describe the trace memo: captures
	// executed the VM, hits reused a capture. MemoBytes is the resident
	// encoded size.
	MemoCaptures, MemoHits, MemoBytes int64
	// SegmentedRuns, SegmentsExecuted, and WarmupInstructions describe
	// segment-parallel replay: runs that split, segments executed, and
	// instructions replayed purely to warm predictor state before a seam.
	SegmentedRuns, SegmentsExecuted, WarmupInstructions int64
	// StoreCacheHits/Misses/Evictions are the out-of-core trace store's
	// block-group cache counters; SpilledCaptures and SpilledBytes describe
	// captures spilled to trace-store files instead of held in memory.
	StoreCacheHits, StoreCacheMisses, StoreCacheEvictions int64
	SpilledCaptures, SpilledBytes                         int64
	// Interrupted marks a run cancelled before completing (SIGINT); the
	// exported telemetry covers the cells that finished.
	Interrupted bool
}

// RunMetrics is the run-level section of the telemetry report.
type RunMetrics struct {
	CellsStarted   int64 `json:"cells_started"`
	CellsFailed    int64 `json:"cells_failed"`
	CellsRecovered int64 `json:"cells_recovered"`

	MemoCaptures int64 `json:"memo_captures"`
	MemoHits     int64 `json:"memo_hits"`
	MemoBytes    int64 `json:"memo_bytes"`

	// Segment-parallel replay and out-of-core trace-store counters; all
	// omitempty so reports from runs that never segment or spill (including
	// the golden fixtures) are unchanged.
	SegmentedRuns       int64 `json:"segmented_runs,omitempty"`
	SegmentsExecuted    int64 `json:"segments_executed,omitempty"`
	WarmupInstructions  int64 `json:"warmup_instructions,omitempty"`
	StoreCacheHits      int64 `json:"store_cache_hits,omitempty"`
	StoreCacheMisses    int64 `json:"store_cache_misses,omitempty"`
	StoreCacheEvictions int64 `json:"store_cache_evictions,omitempty"`
	SpilledCaptures     int64 `json:"spilled_captures,omitempty"`
	SpilledBytes        int64 `json:"spilled_bytes,omitempty"`

	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`
	BusyMS  float64 `json:"busy_ms"`
	// Occupancy is BusyMS / (WallMS * Workers): the fraction of the
	// worker pool's capacity spent inside simulation cells.
	Occupancy float64 `json:"worker_occupancy"`

	Instructions int64 `json:"instructions_simulated"`
	Interrupted  bool  `json:"interrupted,omitempty"`
}

// TargetShare is one entry of a site's top-target histogram.
type TargetShare struct {
	Target string `json:"target"`
	Count  int64  `json:"count"`
}

// SiteReport is one static indirect jump's statistics within a cell.
type SiteReport struct {
	PC             string  `json:"pc"`
	Executions     int64   `json:"executions"`
	Mispredicts    int64   `json:"mispredicts"`
	MispredictRate float64 `json:"mispredict_rate"`
	// DistinctTargets counts exactly-tracked targets;
	// TargetOverflow counts executions whose target fell beyond the
	// per-site tracking bound (0 in practice for these workloads).
	DistinctTargets int           `json:"distinct_targets"`
	TargetOverflow  int64         `json:"target_overflow,omitempty"`
	TopTargets      []TargetShare `json:"top_targets"`
	// DominantShare is the hottest target's fraction of the site's
	// executions — the dominant-target skew behind Figures 1-8.
	DominantShare float64 `json:"dominant_share"`
	// TargetEntropy and HistoryEntropy are Shannon entropies (bits) of
	// the site's target and fetch-time-history distributions.
	TargetEntropy  float64 `json:"target_entropy_bits"`
	HistoryEntropy float64 `json:"history_entropy_bits"`
}

// CellReport is one cell's telemetry: its per-site statistics and the
// tail of its misprediction event log.
type CellReport struct {
	Key
	Sites         []SiteReport `json:"sites"`
	Events        []Event      `json:"events,omitempty"`
	EventsDropped int64        `json:"events_dropped,omitempty"`
}

// Report is the full exported telemetry document.
type Report struct {
	Run   RunMetrics   `json:"run"`
	Cells []CellReport `json:"cells"`
}

// Report renders the recorder's merged state. Cells and sites are fully
// sorted, so two runs of the same configuration produce identical
// documents regardless of worker count or completion order.
func (r *Recorder) Report(info RunInfo) *Report {
	rep := &Report{
		Run: RunMetrics{
			MemoCaptures:        info.MemoCaptures,
			MemoHits:            info.MemoHits,
			MemoBytes:           info.MemoBytes,
			SegmentedRuns:       info.SegmentedRuns,
			SegmentsExecuted:    info.SegmentsExecuted,
			WarmupInstructions:  info.WarmupInstructions,
			StoreCacheHits:      info.StoreCacheHits,
			StoreCacheMisses:    info.StoreCacheMisses,
			StoreCacheEvictions: info.StoreCacheEvictions,
			SpilledCaptures:     info.SpilledCaptures,
			SpilledBytes:        info.SpilledBytes,
			Workers:             info.Workers,
			WallMS:              float64(info.Wall.Microseconds()) / 1000,
			Instructions:        info.Instructions,
			Interrupted:         info.Interrupted,
		},
	}
	if r == nil {
		return rep
	}
	rep.Run.CellsStarted = r.cellsStarted.Load()
	rep.Run.CellsFailed = r.cellsFailed.Load()
	rep.Run.CellsRecovered = r.cellsRecovered.Load()
	rep.Run.BusyMS = float64(time.Duration(r.busyNS.Load()).Microseconds()) / 1000
	if info.Workers > 0 && rep.Run.WallMS > 0 {
		rep.Run.Occupancy = rep.Run.BusyMS / (rep.Run.WallMS * float64(info.Workers))
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]Key, 0, len(r.cells))
	for k := range r.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	for _, k := range keys {
		rep.Cells = append(rep.Cells, cellReport(k, r.cells[k], r.cfg.TopK))
	}
	return rep
}

// cellReport renders one collector's state.
func cellReport(k Key, c *Collector, topK int) CellReport {
	cr := CellReport{Key: k}
	for _, pc := range sortedKeys(c.sites) {
		cr.Sites = append(cr.Sites, siteReport(pc, c.sites[pc], topK))
	}
	cr.Events, cr.EventsDropped = c.Events()
	return cr
}

func siteReport(pc uint64, s *site, topK int) SiteReport {
	sr := SiteReport{
		PC:              hex(pc),
		Executions:      s.executions,
		Mispredicts:     s.mispredicts,
		DistinctTargets: len(s.targets),
		TargetOverflow:  s.targetOverflow,
		TargetEntropy:   entropy(s.targets, s.targetOverflow),
		HistoryEntropy:  entropy(s.histories, s.historyOverflow),
	}
	if s.executions > 0 {
		sr.MispredictRate = float64(s.mispredicts) / float64(s.executions)
	}
	// Top-K targets by count, ties broken by address, so the histogram is
	// deterministic.
	targets := sortedKeys(s.targets)
	sort.SliceStable(targets, func(i, j int) bool { return s.targets[targets[i]] > s.targets[targets[j]] })
	for i, t := range targets {
		if i >= topK {
			break
		}
		sr.TopTargets = append(sr.TopTargets, TargetShare{Target: hex(t), Count: s.targets[t]})
	}
	if len(targets) > 0 && s.executions > 0 {
		sr.DominantShare = float64(s.targets[targets[0]]) / float64(s.executions)
	}
	return sr
}
