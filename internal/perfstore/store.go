// Package perfstore is the durable results store behind cmd/tcperf: an
// append-only, sharded, CRC-guarded on-disk log of uploaded benchmark and
// telemetry JSON, keyed by content hash so retried uploads are idempotent.
//
// Durability contract (what "acknowledged" means):
//
//   - Put returns nil only after the record's bytes are written AND
//     fsynced to the shard's active segment. An acknowledged record
//     survives process kill, including SIGKILL, and power-loss-style torn
//     writes to anything after it.
//   - A failed or interrupted Put leaves either no trace or a torn tail;
//     reopening the store truncates torn tails back to the last durable
//     record (clean-prefix contract, like internal/trace's ErrCorrupt).
//     Unacknowledged data is never half-applied: it is either invisible
//     or a byte-identical duplicate of a record that was later re-uploaded
//     (content-hash IDs make duplicates harmless).
//   - Records are immutable once written; there is no update or delete
//     path, so crash recovery never has to reason about overwrites.
//
// Layout under the store directory:
//
//	MANIFEST.json            {"version":1,"shards":N}  (atomic temp+rename)
//	shard-00/ … shard-NN/    seg-000001.log …          (append-only segments)
//
// A record's shard is derived from its content hash, so one upload's
// durability never depends on another shard's health, and concurrent
// uploads to different shards append in parallel.
package perfstore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	manifestName    = "MANIFEST.json"
	manifestVersion = 1

	defaultShards   = 8
	maxShards       = 256
	defaultSegBytes = 64 << 20
)

// Options configure Open. The zero value selects defaults.
type Options struct {
	// Shards is the shard-directory count used when the store is first
	// created; an existing store keeps the count in its manifest. 0 means 8.
	Shards int
	// SegmentMaxBytes rotates a shard's active segment once it grows past
	// this size. 0 means 64 MB.
	SegmentMaxBytes int64
	// FS is the filesystem the store runs on; nil means the real one.
	// Tests inject fault-carrying filesystems here.
	FS VFS
}

type manifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// recLoc is the in-memory index entry for one record: enough to find and
// read its body without rescanning the segment.
type recLoc struct {
	meta    Meta
	shard   int
	seg     int
	bodyOff int64
}

type shard struct {
	id  int
	dir string

	mu     sync.Mutex
	seg    int   // active segment number (1-based)
	size   int64 // bytes in the active segment file
	f      File  // open append handle, nil until first Put
	broken bool  // active segment unusable; rotate on next Put
	buf    []byte
}

// RepairNote records one torn tail truncated while opening the store.
type RepairNote struct {
	Path      string `json:"path"`
	CleanLen  int64  `json:"clean_len"`
	LostBytes int64  `json:"lost_bytes"`
	Cause     string `json:"cause"`
}

// Store is a durable, sharded, idempotent record store. All methods are
// safe for concurrent use.
type Store struct {
	dir    string
	fsys   VFS
	segMax int64

	shards []*shard

	mu   sync.RWMutex
	byID map[string]*recLoc
	recs []*recLoc

	repairs    []RepairNote
	duplicates int64

	puts, dups, putErrors atomic.Int64
	bodyBytes             atomic.Int64
}

// Open opens (creating if necessary) the store rooted at dir, replaying
// every shard's segments to rebuild the index. Torn tails — the signature
// of a crash mid-append — are truncated back to the last durable record
// and reported in RepairNotes; damage that eats whole records surfaces
// the same way, keeping the clean prefix readable.
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OS()
	}
	segMax := opts.SegmentMaxBytes
	if segMax <= 0 {
		segMax = defaultSegBytes
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m, err := loadOrInitManifest(fsys, dir, opts.Shards)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:    dir,
		fsys:   fsys,
		segMax: segMax,
		byID:   make(map[string]*recLoc),
	}
	for i := 0; i < m.Shards; i++ {
		sh := &shard{id: i, dir: filepath.Join(dir, shardName(i)), seg: 1}
		if err := fsys.MkdirAll(sh.dir, 0o755); err != nil {
			return nil, err
		}
		if err := s.replayShard(sh); err != nil {
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

func loadOrInitManifest(fsys VFS, dir string, shards int) (manifest, error) {
	path := filepath.Join(dir, manifestName)
	if f, err := fsys.Open(path); err == nil {
		st, err := f.Stat()
		var raw []byte
		if err == nil {
			raw = make([]byte, st.Size())
			_, err = f.ReadAt(raw, 0)
		}
		f.Close()
		if err != nil && err != io.EOF {
			return manifest{}, fmt.Errorf("perfstore: manifest: %w", err)
		}
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return manifest{}, corruptf("manifest %s: %v", path, err)
		}
		if m.Version != manifestVersion {
			return manifest{}, fmt.Errorf("perfstore: manifest version %d, want %d", m.Version, manifestVersion)
		}
		if m.Shards <= 0 || m.Shards > maxShards {
			return manifest{}, corruptf("manifest shard count %d out of range", m.Shards)
		}
		return m, nil
	}
	if shards == 0 {
		shards = defaultShards
	}
	if shards < 0 || shards > maxShards {
		return manifest{}, fmt.Errorf("perfstore: shard count %d out of range [1,%d]", shards, maxShards)
	}
	m := manifest{Version: manifestVersion, Shards: shards}
	raw, err := json.Marshal(m)
	if err != nil {
		return manifest{}, err
	}
	// Atomic create: write a temp file, fsync it, rename into place, fsync
	// the directory. A crash at any point leaves either no manifest (next
	// open re-creates it) or the complete one — never a torn manifest.
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return manifest{}, err
	}
	_, werr := f.Write(raw)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fsys.Remove(tmp)
		return manifest{}, werr
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return manifest{}, err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return manifest{}, err
	}
	return m, nil
}

func shardName(i int) string { return fmt.Sprintf("shard-%02d", i) }

func segName(n int) string { return fmt.Sprintf("seg-%06d.log", n) }

// parseSegName returns the segment number of a seg-NNNNNN.log name, or 0.
func parseSegName(name string) int {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
		return 0
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".log"))
	if err != nil || n <= 0 {
		return 0
	}
	return n
}

// replayShard scans a shard's segments in order, indexing every durable
// record and truncating torn tails.
func (s *Store) replayShard(sh *shard) error {
	entries, err := s.fsys.ReadDir(sh.dir)
	if err != nil {
		return err
	}
	var segs []int
	for _, e := range entries {
		if n := parseSegName(e.Name()); n > 0 && !e.IsDir() {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	for _, n := range segs {
		path := filepath.Join(sh.dir, segName(n))
		cleanLen, err := s.replaySegment(sh, n, path)
		if err != nil {
			return err
		}
		if n >= sh.seg {
			sh.seg, sh.size = n, cleanLen
		}
	}
	return nil
}

// replaySegment scans one segment file, indexes its clean prefix, and
// truncates anything after it. Returns the clean length.
func (s *Store) replaySegment(sh *shard, seg int, path string) (int64, error) {
	f, err := s.fsys.Open(path)
	if err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return 0, err
	}
	size := st.Size()
	r := io.NewSectionReader(f, 0, size)
	cleanLen, scanErr := scanSegment(r, func(rec scannedRecord) error {
		loc := &recLoc{meta: rec.Meta, shard: sh.id, seg: seg, bodyOff: rec.BodyOff}
		if _, ok := s.byID[loc.meta.ID]; ok {
			// A crash between fsync and acknowledgement followed by a
			// client retry leaves two byte-identical rows; the first one
			// wins and the copy is skipped.
			s.duplicates++
			return nil
		}
		s.byID[loc.meta.ID] = loc
		s.recs = append(s.recs, loc)
		s.bodyBytes.Add(loc.meta.Bytes)
		return nil
	})
	f.Close()
	if scanErr != nil {
		// The tail past cleanLen did not decode: a torn append or on-disk
		// damage. Cut back to the clean prefix so the segment is again a
		// pure sequence of durable records.
		wf, err := s.fsys.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return 0, fmt.Errorf("perfstore: repairing %s: %w", path, err)
		}
		terr := wf.Truncate(cleanLen)
		if cerr := wf.Close(); terr == nil {
			terr = cerr
		}
		if terr != nil {
			return 0, fmt.Errorf("perfstore: truncating %s to %d: %w", path, cleanLen, terr)
		}
		s.repairs = append(s.repairs, RepairNote{
			Path:      path,
			CleanLen:  cleanLen,
			LostBytes: size - cleanLen,
			Cause:     scanErr.Error(),
		})
	}
	return cleanLen, nil
}

// shardOf maps a content-hash ID onto a shard index.
func (s *Store) shardOf(id string) *shard {
	var b byte
	if len(id) >= 2 {
		// The ID is hex; fold the first byte's value.
		hi, lo := hexVal(id[0]), hexVal(id[1])
		b = hi<<4 | lo
	}
	return s.shards[int(b)%len(s.shards)]
}

func hexVal(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10
	}
	return 0
}

// Put appends one record durably and returns its stamped meta. The
// returned bool is true when the content was already stored: the existing
// row's meta is returned and nothing is written, which is what makes
// client retries and duplicate uploads free. meta.ID and meta.Bytes are
// derived here; callers set the identity fields and Time.
func (s *Store) Put(meta Meta, body []byte) (Meta, bool, error) {
	if meta.Kind == "" {
		return Meta{}, false, fmt.Errorf("perfstore: record kind must be set")
	}
	meta.ID = ContentID(meta.Kind, meta.Machine, meta.Commit, meta.Experiment, body)
	meta.Bytes = int64(len(body))

	s.mu.RLock()
	loc, ok := s.byID[meta.ID]
	s.mu.RUnlock()
	if ok {
		s.dups.Add(1)
		return loc.meta, true, nil
	}

	sh := s.shardOf(meta.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	// Re-check under the shard lock: a concurrent Put of the same content
	// maps to the same shard, so the second caller sees the first's row.
	s.mu.RLock()
	loc, ok = s.byID[meta.ID]
	s.mu.RUnlock()
	if ok {
		s.dups.Add(1)
		return loc.meta, true, nil
	}

	if err := s.ensureActive(sh); err != nil {
		s.putErrors.Add(1)
		return Meta{}, false, err
	}
	sh.buf = sh.buf[:0]
	buf, err := encodeRecord(sh.buf, meta, body)
	if err != nil {
		s.putErrors.Add(1)
		return Meta{}, false, err
	}
	sh.buf = buf

	off := sh.size
	n, werr := sh.f.Write(buf)
	if werr == nil && n < len(buf) {
		werr = io.ErrShortWrite
	}
	if werr == nil {
		// The ack barrier: data is only durable once fsync returns.
		werr = sh.f.Sync()
	}
	if werr != nil {
		// The append failed part-way: the file may hold a torn record.
		// Cut back to the pre-append offset so in-process readers and a
		// clean shutdown leave no garbage; if even that fails, abandon
		// the segment — the reopen scan truncates the torn tail then.
		s.putErrors.Add(1)
		if terr := sh.f.Truncate(off); terr != nil {
			sh.broken = true
			sh.f.Close()
			sh.f = nil
		}
		return Meta{}, false, fmt.Errorf("perfstore: append to %s: %w", segName(sh.seg), werr)
	}
	sh.size = off + int64(len(buf))

	loc = &recLoc{meta: meta, shard: sh.id, seg: sh.seg, bodyOff: off + recHeaderLen + metaJSONLen(buf)}
	s.mu.Lock()
	s.byID[meta.ID] = loc
	s.recs = append(s.recs, loc)
	s.mu.Unlock()
	s.puts.Add(1)
	s.bodyBytes.Add(meta.Bytes)

	if sh.size >= s.segMax {
		sh.f.Close()
		sh.f = nil
		sh.seg++
		sh.size = 0
	}
	return meta, false, nil
}

// metaJSONLen reads the meta length back out of an encoded record.
func metaJSONLen(rec []byte) int64 {
	return int64(uint32(rec[0]) | uint32(rec[1])<<8 | uint32(rec[2])<<16 | uint32(rec[3])<<24)
}

// ensureActive opens (or creates) the shard's active segment for append.
func (s *Store) ensureActive(sh *shard) error {
	if sh.broken {
		// The previous segment could not even be truncated after a failed
		// append; leave its torn tail for the reopen scan and move on.
		sh.broken = false
		sh.seg++
		sh.size = 0
	}
	if sh.f != nil {
		return nil
	}
	path := filepath.Join(sh.dir, segName(sh.seg))
	if sh.size > 0 && sh.size < int64(len(segMagic)) {
		// A crash landed between file creation and the magic write; the
		// reopen scan truncated it below a full header. Start it over.
		sh.size = 0
	}
	f, err := s.fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if sh.size == 0 {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write([]byte(segMagic)); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		// Make the directory entry itself durable before the first record
		// is acknowledged out of this file.
		if err := s.fsys.SyncDir(sh.dir); err != nil {
			f.Close()
			return err
		}
		sh.size = int64(len(segMagic))
	}
	sh.f = f
	return nil
}

// Get returns the meta and body for id. The body is re-hashed before it
// is returned, so silent on-disk damage surfaces as ErrCorrupt instead of
// wrong bytes.
func (s *Store) Get(id string) (Meta, []byte, error) {
	s.mu.RLock()
	loc, ok := s.byID[id]
	s.mu.RUnlock()
	if !ok {
		return Meta{}, nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	path := filepath.Join(s.dir, shardName(loc.shard), segName(loc.seg))
	f, err := s.fsys.Open(path)
	if err != nil {
		return Meta{}, nil, err
	}
	body := make([]byte, loc.meta.Bytes)
	_, rerr := f.ReadAt(body, loc.bodyOff)
	f.Close()
	if rerr != nil {
		return Meta{}, nil, fmt.Errorf("perfstore: reading %s: %w", path, rerr)
	}
	m := loc.meta
	if got := ContentID(m.Kind, m.Machine, m.Commit, m.Experiment, body); got != m.ID {
		return Meta{}, nil, corruptf("record %s: stored body hashes to %s", m.ID, got)
	}
	return m, body, nil
}

// Query selects records matching q, newest first (upload time descending,
// ID as the deterministic tiebreak).
type Query struct {
	Kind       string
	Machine    string
	Commit     string
	Experiment string
	// Limit caps the result count; 0 means no cap.
	Limit int
}

func (q Query) matches(m Meta) bool {
	return (q.Kind == "" || q.Kind == m.Kind) &&
		(q.Machine == "" || q.Machine == m.Machine) &&
		(q.Commit == "" || q.Commit == m.Commit) &&
		(q.Experiment == "" || q.Experiment == m.Experiment)
}

// Query returns the metas matching q.
func (s *Store) Query(q Query) []Meta {
	s.mu.RLock()
	out := make([]Meta, 0, 16)
	for _, loc := range s.recs {
		if q.matches(loc.meta) {
			out = append(out, loc.meta)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].ID < out[j].ID
	})
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	Records    int64 `json:"records"`
	Shards     int   `json:"shards"`
	BodyBytes  int64 `json:"body_bytes"`
	Puts       int64 `json:"puts"`
	DupPuts    int64 `json:"dup_puts"`
	PutErrors  int64 `json:"put_errors"`
	Repairs    int64 `json:"repairs"`
	Duplicates int64 `json:"duplicate_rows"`
}

// Stats returns current counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	records := int64(len(s.recs))
	s.mu.RUnlock()
	return Stats{
		Records:    records,
		Shards:     len(s.shards),
		BodyBytes:  s.bodyBytes.Load(),
		Puts:       s.puts.Load(),
		DupPuts:    s.dups.Load(),
		PutErrors:  s.putErrors.Load(),
		Repairs:    int64(len(s.repairs)),
		Duplicates: s.duplicates,
	}
}

// RepairNotes returns the torn tails truncated when the store was opened.
func (s *Store) RepairNotes() []RepairNote {
	return append([]RepairNote(nil), s.repairs...)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close syncs and closes every shard's active segment. Records were
// already durable at acknowledgement time; Close only releases handles.
func (s *Store) Close() error {
	var first error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.f != nil {
			if err := sh.f.Sync(); err != nil && first == nil {
				first = err
			}
			if err := sh.f.Close(); err != nil && first == nil {
				first = err
			}
			sh.f = nil
		}
		sh.mu.Unlock()
	}
	return first
}
