package btb

import "testing"

// TestConfigCostBits pins the BTB storage accounting used by the sweep
// engine's accuracy-vs-storage frontier.
func TestConfigCostBits(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		want int
	}{
		// 256 sets: tag 30-8=22; per entry 32+3+22+lru2+valid1 = 60.
		{"default 256x4", Config{Sets: 256, Ways: 4}, 256 * 4 * 60},
		// 2-bit strategy adds a 2-bit counter per entry.
		{"2bit 256x4", Config{Sets: 256, Ways: 4, Strategy: StrategyTwoBit}, 256 * 4 * 62},
		// 1 set, 1 way: tag 30, no LRU: 32+3+30+0+1 = 66.
		{"1x1", Config{Sets: 1, Ways: 1}, 66},
		// Huge set count cannot drive the tag negative.
		{"deep sets", Config{Sets: 1 << 30, Ways: 1}, 1 << 30 * (32 + 3 + 0 + 0 + 1)},
	}
	for _, tt := range tests {
		if got := tt.cfg.CostBits(); got != tt.want {
			t.Errorf("%s: CostBits = %d, want %d", tt.name, got, tt.want)
		}
	}
}
