// Package faultinject is the test harness that proves the experiment
// suite's fault tolerance: it corrupts or truncates memoized replay
// captures, and panics or delays inside chosen simulation cells, all
// through the test hooks the bench and workload packages expose. It is
// ordinary always-compiled code (no build tags): a Plan is inert until
// Install is called, and Install is only reachable from tests.
//
// The invariants its tests pin down:
//
//   - the suite survives every fault class and still runs to completion;
//   - exactly the affected rows render as ERR, with a failure digest;
//   - healthy cells' output is byte-identical to a fault-free run, at
//     any worker count.
package faultinject

import (
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Corruption overwrites Length bytes at Offset of a captured replay with
// 0xFF. The replay cursor's structural validation (reserved flag bits,
// class ranges, varint overflow) turns the damage into a trace.ErrCorrupt
// at decode time, mid-simulation.
type Corruption struct {
	Offset int
	Length int
}

// Plan describes the faults to inject into one run. The zero value
// injects nothing.
type Plan struct {
	// PanicCells panics on entry to each listed cell; keys are full cell
	// labels ("experiment/workload/config"), values the panic message.
	PanicCells map[string]string
	// PanicPoints panics just before each listed sweep point simulates
	// (inside the sweep engine's per-unit recover scope); keys are point
	// keys ("workload/config-label"), values the panic message.
	PanicPoints map[string]string
	// DelayCells sleeps before each listed cell runs, reshuffling worker
	// scheduling without changing results.
	DelayCells map[string]time.Duration
	// CorruptReplays damages the named workloads' captured replays.
	CorruptReplays map[string]Corruption
	// TruncateReplays drops the given number of trailing bytes from the
	// named workloads' captures; the cursor reports a truncated-replay
	// trace.ErrCorrupt when the records run out early.
	TruncateReplays map[string]int

	mu   sync.Mutex
	hits []string
}

// Triggered returns the labels and workload names whose faults actually
// fired, in firing order; tests assert on it so a plan that never
// triggers cannot pass silently.
func (p *Plan) Triggered() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.hits...)
}

func (p *Plan) hit(what string) {
	p.mu.Lock()
	p.hits = append(p.hits, what)
	p.mu.Unlock()
}

// Install activates the plan: cell faults through bench.TestCellHook,
// sweep-point faults through sweep.TestPointHook,
// capture faults through workload.TestCaptureTransform. It resets the
// workload memo so already-captured healthy replays are re-captured under
// the transform. The returned restore function removes the hooks and
// resets the memo again, so no corrupted capture outlives the plan.
// Plans must not be installed concurrently.
func (p *Plan) Install() (restore func()) {
	prevHook := bench.TestCellHook
	prevPointHook := sweep.TestPointHook
	prevTransform := workload.TestCaptureTransform

	sweep.TestPointHook = func(key string) {
		if msg, ok := p.PanicPoints[key]; ok {
			p.hit("point:" + key)
			panic(msg)
		}
	}
	bench.TestCellHook = func(label string) {
		if msg, ok := p.PanicCells[label]; ok {
			p.hit(label)
			panic(msg)
		}
		if d, ok := p.DelayCells[label]; ok {
			p.hit(label)
			time.Sleep(d)
		}
	}
	workload.TestCaptureTransform = func(name string, budget int64, rep *trace.Replay) *trace.Replay {
		c, corrupt := p.CorruptReplays[name]
		cut, truncate := p.TruncateReplays[name]
		if !corrupt && !truncate {
			return rep
		}
		buf := rep.Bytes()
		if corrupt {
			p.hit("corrupt:" + name)
			for i := c.Offset; i < c.Offset+c.Length && i < len(buf); i++ {
				buf[i] = 0xFF
			}
		}
		if truncate {
			p.hit("truncate:" + name)
			if cut > len(buf) {
				cut = len(buf)
			}
			buf = buf[:len(buf)-cut]
		}
		return trace.NewReplayBytes(buf, rep.Len())
	}
	workload.ResetMemo()

	return func() {
		bench.TestCellHook = prevHook
		sweep.TestPointHook = prevPointHook
		workload.TestCaptureTransform = prevTransform
		workload.ResetMemo()
	}
}
