package sweep

import (
	"fmt"
	"math/bits"

	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/sim"
)

// Point is one fully-resolved grid point: a predictor configuration bound
// to a workload. Points are plain data — JSON-serializable for manifests
// and sweep/v1 documents — and turn into a runnable sim.Config on demand.
type Point struct {
	Workload string `json:"workload"`
	Family   string `json:"family"`
	Scheme   string `json:"scheme,omitempty"`
	History  string `json:"history,omitempty"`
	Entries  int    `json:"entries,omitempty"`
	Ways     int    `json:"ways,omitempty"`
	HistBits int    `json:"hist_bits,omitempty"`
	TagBits  int    `json:"tag_bits,omitempty"`
	// Stage1 is the cascaded first-stage entry count, or the ittage base
	// table entry count.
	Stage1 int `json:"stage1_entries,omitempty"`
	// Tables is the ittage tagged-table count.
	Tables int `json:"tables,omitempty"`
}

// ittageLens returns the geometric history lengths for n tagged tables:
// the n-length tail of {2, 4, 8, 16, 32, 64}, so the longest history is
// always 64 bits and shorter cascades drop the short end first.
func ittageLens(n int) []int {
	all := []int{2, 4, 8, 16, 32, 64}
	return all[len(all)-n:]
}

// ConfigLabel is the point's canonical configuration name (without the
// workload), e.g. "tagless-gshare-e512-h9-pattern".
func (p Point) ConfigLabel() string {
	switch p.Family {
	case "btb":
		return fmt.Sprintf("btb-%s-e%d-w%d", p.Scheme, p.Entries, p.Ways)
	case "tagless":
		return fmt.Sprintf("tagless-%s-e%d-h%d-%s", p.Scheme, p.Entries, p.HistBits, p.History)
	case "tagged":
		return fmt.Sprintf("tagged-%s-e%d-w%d-h%d-t%d-%s", p.Scheme, p.Entries, p.Ways, p.HistBits, p.TagBits, p.History)
	case "cascaded":
		return fmt.Sprintf("cascaded-%s-s%d-e%d-w%d-h%d-t%d-%s", p.Scheme, p.Stage1, p.Entries, p.Ways, p.HistBits, p.TagBits, p.History)
	case "ittage":
		return fmt.Sprintf("ittage-b%d-e%d-n%d-t%d-h%d-%s", p.Stage1, p.Entries, p.Tables, p.TagBits, p.HistBits, p.History)
	default:
		return "unknown"
	}
}

// Key is the point's canonical identity: workload plus configuration.
func (p Point) Key() string { return p.Workload + "/" + p.ConfigLabel() }

func pow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Validate checks that the point is a runnable configuration. Expansion
// calls it on every cross-product combination and skips (while counting)
// the invalid ones, so range axes may legally sweep past a family's
// constraints at some grid corners.
func (p Point) Validate() error {
	switch p.Family {
	case "btb":
		if !pow2(p.Entries) || !pow2(p.Ways) || p.Ways > p.Entries {
			return fmt.Errorf("sweep: btb geometry %d entries / %d ways must be powers of two with ways <= entries", p.Entries, p.Ways)
		}
	case "tagless":
		cfg, err := p.taglessConfig()
		if err != nil {
			return err
		}
		if err := cfg.Validate(); err != nil {
			return err
		}
		return p.validateHistory()
	case "tagged":
		if err := p.taggedConfig().Validate(); err != nil {
			return err
		}
		return p.validateHistory()
	case "cascaded":
		if err := p.cascadedConfig().Validate(); err != nil {
			return err
		}
		return p.validateHistory()
	case "ittage":
		if err := p.ittageConfig().Validate(); err != nil {
			return err
		}
		return p.validateHistory()
	default:
		return fmt.Errorf("sweep: unknown family %q", p.Family)
	}
	return nil
}

func (p Point) validateHistory() error {
	if p.HistBits < 1 || p.HistBits > 64 {
		return fmt.Errorf("sweep: history depth %d out of range [1, 64]", p.HistBits)
	}
	if !historyKinds[p.History] {
		return fmt.Errorf("sweep: unknown history kind %q", p.History)
	}
	return nil
}

func (p Point) taglessConfig() (core.TaglessConfig, error) {
	cfg := core.TaglessConfig{Entries: p.Entries}
	switch p.Scheme {
	case "gag":
		cfg.Scheme = core.SchemeGAg
	case "gshare":
		cfg.Scheme = core.SchemeGshare
	case "gas":
		cfg.Scheme = core.SchemeGAs
		if !pow2(p.Entries) {
			return cfg, fmt.Errorf("sweep: tagless entries %d not a power of two", p.Entries)
		}
		idxBits := bits.TrailingZeros(uint(p.Entries))
		if p.HistBits > idxBits {
			return cfg, fmt.Errorf("sweep: GAs history %d exceeds index width %d", p.HistBits, idxBits)
		}
		cfg.HistBits = p.HistBits
		cfg.AddrBits = idxBits - p.HistBits
	default:
		return cfg, fmt.Errorf("sweep: unknown tagless scheme %q", p.Scheme)
	}
	return cfg, nil
}

func (p Point) taggedConfig() core.TaggedConfig {
	cfg := core.TaggedConfig{
		Entries: p.Entries, Ways: p.Ways, HistBits: p.HistBits, TagBits: p.TagBits,
	}
	switch p.Scheme {
	case "addr":
		cfg.Scheme = core.SchemeAddress
	case "concat":
		cfg.Scheme = core.SchemeHistoryConcat
	default:
		cfg.Scheme = core.SchemeHistoryXor
	}
	return cfg
}

func (p Point) cascadedConfig() core.CascadedConfig {
	return core.CascadedConfig{
		Stage1Entries: p.Stage1,
		Stage1Ways:    2,
		Stage2: core.TaggedConfig{
			Entries: p.Entries, Ways: p.Ways, Scheme: core.SchemeHistoryXor,
			HistBits: p.HistBits, TagBits: p.TagBits,
		},
		Filtered: p.Scheme != "unfiltered",
	}
}

func (p Point) ittageConfig() core.ITTAGEConfig {
	n := p.Tables
	if n < 1 {
		n = 1
	}
	if n > 6 {
		n = 6
	}
	return core.ITTAGEConfig{
		BaseEntries:  p.Stage1,
		TableEntries: p.Entries,
		HistLens:     ittageLens(n),
		TagBits:      p.TagBits,
	}
}

// historyProvider returns the constructor for the point's history kind.
func (p Point) historyProvider() func() history.Provider {
	hbits := p.HistBits
	if p.History == "pattern" {
		return func() history.Provider { return history.NewPatternProvider(hbits) }
	}
	cfg := history.PathConfig{Bits: hbits, BitsPerTarget: 1, AddrBitOffset: 2}
	switch p.History {
	case "path-peraddr":
		cfg.PerAddress = true
	case "path-branch":
		cfg.Filter = history.FilterBranch
	case "path-control":
		cfg.Filter = history.FilterControl
	case "path-callret":
		cfg.Filter = history.FilterCallRet
	default: // path-indjmp
		cfg.Filter = history.FilterIndJmp
	}
	return func() history.Provider { return history.NewPath(cfg) }
}

// SimConfig builds the point's front-end configuration: the paper's
// baseline front end, with the BTB re-geometried for btb-family points or
// augmented with the point's target cache and history otherwise.
func (p Point) SimConfig() (sim.Config, error) {
	if err := p.Validate(); err != nil {
		return sim.Config{}, err
	}
	cfg := sim.DefaultConfig()
	switch p.Family {
	case "btb":
		cfg.BTB = btb.Config{Sets: p.Entries / p.Ways, Ways: p.Ways}
		if p.Scheme == "2bit" {
			cfg.BTB.Strategy = btb.StrategyTwoBit
		}
		return cfg, nil
	case "tagless":
		tl, err := p.taglessConfig()
		if err != nil {
			return sim.Config{}, err
		}
		return cfg.WithTargetCache(
			func() core.TargetCache { return core.NewTagless(tl) }, p.historyProvider()), nil
	case "tagged":
		tg := p.taggedConfig()
		return cfg.WithTargetCache(
			func() core.TargetCache { return core.NewTagged(tg) }, p.historyProvider()), nil
	case "cascaded":
		ca := p.cascadedConfig()
		return cfg.WithTargetCache(
			func() core.TargetCache { return core.NewCascaded(ca) }, p.historyProvider()), nil
	case "ittage":
		it := p.ittageConfig()
		return cfg.WithTargetCache(
			func() core.TargetCache { return core.NewITTAGE(it) }, p.historyProvider()), nil
	}
	return sim.Config{}, fmt.Errorf("sweep: unknown family %q", p.Family)
}

// StorageBits prices the point's total target-prediction storage: the
// front end's BTB (the point's own geometry for btb-family points, the
// paper's baseline otherwise) plus the target-cache structure, each under
// its config's CostBits accounting. Pricing the BTB into every point puts
// "grow the BTB" and "add a target cache" on one comparable axis — the
// trade the paper's design-space study is about.
func (p Point) StorageBits() (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	switch p.Family {
	case "btb":
		cfg := btb.Config{Sets: p.Entries / p.Ways, Ways: p.Ways}
		if p.Scheme == "2bit" {
			cfg.Strategy = btb.StrategyTwoBit
		}
		return cfg.CostBits(), nil
	case "tagless":
		tl, err := p.taglessConfig()
		if err != nil {
			return 0, err
		}
		return btb.DefaultConfig().CostBits() + tl.CostBits(), nil
	case "tagged":
		return btb.DefaultConfig().CostBits() + p.taggedConfig().CostBits(), nil
	case "cascaded":
		return btb.DefaultConfig().CostBits() + p.cascadedConfig().CostBits(), nil
	case "ittage":
		return btb.DefaultConfig().CostBits() + p.ittageConfig().CostBits(), nil
	}
	return 0, fmt.Errorf("sweep: unknown family %q", p.Family)
}

// Expansion is a spec expanded to its runnable points.
type Expansion struct {
	// Points are the runnable grid points in canonical order: workloads
	// in spec order, then grids in spec order, then the documented axis
	// nesting (scheme, history, entries, ways, hist_bits, tag_bits,
	// stage1_entries, tables).
	Points []Point
	// SkippedInvalid counts cross-product combinations dropped because a
	// family constraint rejected them (e.g. GAs history deeper than the
	// index, associativity above the entry count). Reported, never
	// silent.
	SkippedInvalid int
}

// familyDefaults fills a point's absent axes with its family's canonical
// values (the paper's geometries where one exists).
func gridAxes(g Grid) (schemes, hists []string, entries, ways, histBits, tagBits, stage1, tables []int) {
	schemes = g.Schemes
	hists = g.History
	if len(hists) == 0 {
		hists = []string{"pattern"}
	}
	switch g.Family {
	case "btb":
		if len(schemes) == 0 {
			schemes = []string{"default"}
		}
		hists = []string{""}
		entries = g.Entries.or(1024)
		ways = g.Ways.or(4)
		histBits, tagBits, stage1, tables = []int{0}, []int{0}, []int{0}, []int{0}
	case "tagless":
		if len(schemes) == 0 {
			schemes = []string{"gshare"}
		}
		entries = g.Entries.or(512)
		ways = []int{0}
		histBits = g.HistBits.or(9)
		tagBits, stage1, tables = []int{0}, []int{0}, []int{0}
	case "tagged":
		if len(schemes) == 0 {
			schemes = []string{"xor"}
		}
		entries = g.Entries.or(256)
		ways = g.Ways.or(4)
		histBits = g.HistBits.or(9)
		tagBits = g.TagBits.or(32)
		stage1, tables = []int{0}, []int{0}
	case "cascaded":
		if len(schemes) == 0 {
			schemes = []string{"filtered"}
		}
		entries = g.Entries.or(256)
		ways = g.Ways.or(4)
		histBits = g.HistBits.or(9)
		tagBits = g.TagBits.or(32)
		stage1 = g.Stage1Entries.or(128)
		tables = []int{0}
	case "ittage":
		schemes = []string{""}
		entries = g.Entries.or(128)
		ways = []int{0}
		histBits = g.HistBits.or(64)
		tagBits = g.TagBits.or(9)
		stage1 = g.Stage1Entries.or(256)
		tables = g.Tables.or(5)
	}
	return
}

// Expand resolves the spec's cross product into runnable points. The
// order is total and deterministic — the engine's shards, the resume
// manifest and the rendered reports all key off point position.
func (s *Spec) Expand() (*Expansion, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// Bound the raw cross product before walking it: maxPoints only counts
	// valid points, and a degenerate spec could otherwise spin through an
	// astronomically large product of invalid combinations.
	var combos int64
	for _, g := range s.Grids {
		schemes, hists, entries, ways, histBits, tagBits, stage1, tables := gridAxes(g)
		product := int64(len(s.Workloads))
		for _, n := range []int{len(schemes), len(hists), len(entries), len(ways), len(histBits), len(tagBits), len(stage1), len(tables)} {
			product *= int64(n)
			if product > maxPoints {
				return nil, fmt.Errorf("sweep: grid %q crosses more than %d combinations", g.Family, maxPoints)
			}
		}
		combos += product
		if combos > maxPoints {
			return nil, fmt.Errorf("sweep: spec crosses more than %d combinations", maxPoints)
		}
	}
	ex := &Expansion{}
	for _, w := range s.Workloads {
		for _, g := range s.Grids {
			schemes, hists, entries, ways, histBits, tagBits, stage1, tables := gridAxes(g)
			for _, sc := range schemes {
				for _, h := range hists {
					for _, e := range entries {
						for _, wy := range ways {
							for _, hb := range histBits {
								for _, tb := range tagBits {
									for _, s1 := range stage1 {
										for _, tbl := range tables {
											p := Point{
												Workload: w, Family: g.Family, Scheme: sc, History: h,
												Entries: e, Ways: wy, HistBits: hb, TagBits: tb,
												Stage1: s1, Tables: tbl,
											}
											if err := p.Validate(); err != nil {
												ex.SkippedInvalid++
												continue
											}
											ex.Points = append(ex.Points, p)
											if len(ex.Points) > maxPoints {
												return nil, fmt.Errorf("sweep: spec expands past %d points", maxPoints)
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	if len(ex.Points) == 0 {
		return nil, fmt.Errorf("sweep: spec expands to no runnable points (%d invalid combinations)", ex.SkippedInvalid)
	}
	return ex, nil
}
