package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/workload"
)

func TestFlushesDegradePrediction(t *testing.T) {
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 300_000
	cfg := DefaultConfig().WithTargetCache(
		func() core.TargetCache {
			return core.NewTagless(core.TaglessConfig{Entries: 512, Scheme: core.SchemeGshare})
		},
		func() history.Provider { return history.NewPatternProvider(9) },
	)
	never := RunAccuracyWithFlushes(w, budget, 0, cfg)
	plain := RunAccuracy(w, budget, cfg)
	if never.Indirect != plain.Indirect {
		t.Fatalf("interval 0 must match plain run: %+v vs %+v",
			never.Indirect, plain.Indirect)
	}
	often := RunAccuracyWithFlushes(w, budget, 2_000, cfg)
	if often.IndirectMispredictRate() <= never.IndirectMispredictRate() {
		t.Errorf("frequent flushes should hurt: %.2f%% vs %.2f%%",
			100*often.IndirectMispredictRate(), 100*never.IndirectMispredictRate())
	}
	// Monotonic-ish: flushing every 2k should be no better than every 50k.
	mid := RunAccuracyWithFlushes(w, budget, 50_000, cfg)
	if often.IndirectMispredictRate() < mid.IndirectMispredictRate() {
		t.Errorf("more flushing should not help: 2k %.2f%% vs 50k %.2f%%",
			100*often.IndirectMispredictRate(), 100*mid.IndirectMispredictRate())
	}
}
