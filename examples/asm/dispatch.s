; two-target dispatch demo: alternates handlers via a jump table
.name demo
.base 0x1000
.data
jtab: .word &even, &odd
.text
start: li r1, 0        ; counter
       li r2, 200      ; iterations
       li r9, jtab
loop:  andi r3, r1, 1
       slli r4, r3, 3
       add  r4, r9, r4
       ld   r5, 0(r4)
       jr   r5, r3
even:  addi r6, r6, 2
       j next
odd:   addi r6, r6, 3
next:  addi r1, r1, 1
       blt  r1, r2, loop
       halt
