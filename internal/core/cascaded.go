package core

import (
	"fmt"

	"repro/internal/cache"
)

// Cascaded is the follow-up design of Driesen & Hölzle ("The Cascaded
// Predictor", 1998), included as a beyond-the-paper comparator: a small
// address-indexed first stage backs a history-indexed second stage, and —
// the key idea — the second stage is *filtered*: an entry is allocated
// there only when the first stage mispredicts, so monomorphic jumps never
// consume history-indexed capacity.
type Cascaded struct {
	cfg    CascadedConfig
	stage1 *cache.Cache[uint64] // pc-indexed, last-target (BTB-like)
	stage2 *Tagged              // history-indexed
}

// CascadedConfig describes a cascaded indirect-target predictor.
type CascadedConfig struct {
	// Stage1Entries/Stage1Ways give the address-indexed stage geometry.
	Stage1Entries, Stage1Ways int
	// Stage2 is the history-indexed stage configuration.
	Stage2 TaggedConfig
	// Filtered enables allocation filtering (the defining feature); with
	// it off the structure degenerates to "tagged target cache plus a
	// private BTB", useful as an ablation.
	Filtered bool
}

// DefaultCascadedConfig returns a filtered cascade with a 128-entry first
// stage and a 256-entry 4-way second stage.
func DefaultCascadedConfig() CascadedConfig {
	return CascadedConfig{
		Stage1Entries: 128,
		Stage1Ways:    2,
		Stage2: TaggedConfig{
			Entries: 256, Ways: 4, Scheme: SchemeHistoryXor, HistBits: 9,
		},
		Filtered: true,
	}
}

// Validate checks the configuration.
func (c CascadedConfig) Validate() error {
	if c.Stage1Entries <= 0 || c.Stage1Ways <= 0 ||
		c.Stage1Entries%c.Stage1Ways != 0 {
		return fmt.Errorf("core: invalid cascade stage-1 geometry %d/%d",
			c.Stage1Entries, c.Stage1Ways)
	}
	return c.Stage2.Validate()
}

// NewCascaded builds a cascaded predictor. It panics on invalid
// configuration.
func NewCascaded(cfg CascadedConfig) *Cascaded {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cascaded{
		cfg:    cfg,
		stage1: cache.New[uint64](cfg.Stage1Entries/cfg.Stage1Ways, cfg.Stage1Ways),
		stage2: NewTagged(cfg.Stage2),
	}
}

func (c *Cascaded) stage1Index(pc uint64) (int, uint64) {
	word := pc >> 2
	sets := uint64(c.stage1.Sets())
	return int(word % sets), word / sets
}

// Predict implements TargetCache: the second (history) stage wins when it
// hits; otherwise the first stage's last target is used.
func (c *Cascaded) Predict(pc, hist uint64) (uint64, bool) {
	if tgt, ok := c.stage2.Predict(pc, hist); ok {
		return tgt, true
	}
	set, tag := c.stage1Index(pc)
	if v, ok := c.stage1.Lookup(set, tag); ok {
		return *v, true
	}
	return 0, false
}

// Update implements TargetCache. The first stage always learns the last
// target. The second stage updates an existing entry, but allocates a new
// one only if (when filtering) the first stage just mispredicted — i.e.
// the jump demonstrated polymorphism.
func (c *Cascaded) Update(pc, hist, target uint64) {
	set, tag := c.stage1Index(pc)
	stage1Correct := false
	if v, ok := c.stage1.Lookup(set, tag); ok {
		stage1Correct = *v == target
	}
	if _, hit := c.stage2.Predict(pc, hist); hit || !c.cfg.Filtered || !stage1Correct {
		c.stage2.Update(pc, hist, target)
	}
	v, _ := c.stage1.Insert(set, tag)
	*v = target
}

// CostBits returns the configuration's storage cost in bits: 32-bit
// last-target entries in the first stage plus the second stage's tagged
// accounting.
func (c CascadedConfig) CostBits() int {
	return c.Stage1Entries*32 + c.Stage2.CostBits()
}

// CostBits implements TargetCache via the configuration's accounting.
func (c *Cascaded) CostBits() int { return c.cfg.CostBits() }

// Reset implements TargetCache.
func (c *Cascaded) Reset() {
	c.stage1.Reset()
	c.stage2.Reset()
}

var _ TargetCache = (*Cascaded)(nil)
