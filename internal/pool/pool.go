// Package pool is the bounded worker pool shared by the experiment suite's
// cell scheduler and the design-space sweep engine.
//
// The pool is a work-stealing loop in its simplest form: items live in a
// virtual queue addressed by index, and every worker claims the next
// unclaimed index with one atomic increment. A worker that finishes a cheap
// item immediately steals the next pending one, so long-running items never
// leave the rest of the queue idle behind a static partition. Claim order is
// queue order, which keeps schedules deterministic enough for callers that
// render results positionally (byte-identical output at any worker count).
package pool

import (
	"sync"
	"sync/atomic"
)

// Run executes fn(i) for every i in [0, n), running at most workers calls
// concurrently, and returns when all calls have finished. workers <= 1 (or
// n <= 1) degenerates to a serial loop on the calling goroutine, so
// single-worker runs have no scheduling overhead and trivially reproduce
// queue order. fn must contain its own panics: a panic escaping fn on a
// pooled worker crashes the process, exactly as `go fn()` would.
func Run(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}
